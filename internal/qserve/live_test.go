package qserve

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"flos/internal/core"
	"flos/internal/gen"
	"flos/internal/graph"
	"flos/internal/livegraph"
	"flos/internal/measure"
)

func liveTestGraph(t *testing.T, n int, m int64, seed uint64) *graph.MemGraph {
	t.Helper()
	g, err := gen.Community(n, m, gen.CommunityParamsForDensity(2*float64(m)/float64(n)), seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// liveMutation builds a batch of weight upserts between pseudo-random node
// pairs — always valid (OpSet), deterministic per step.
func liveMutation(n int, step, batch int) []livegraph.EdgeOp {
	ops := make([]livegraph.EdgeOp, 0, batch)
	state := uint64(step)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	for len(ops) < batch {
		u := graph.NodeID(next() % uint64(n))
		v := graph.NodeID(next() % uint64(n))
		if u == v {
			continue
		}
		ops = append(ops, livegraph.EdgeOp{
			Op: livegraph.OpSet, U: u, V: v, W: 1 + float64(next()%4),
		})
	}
	return ops
}

// snapTracker pins every snapshot a test's writer publishes, so responses can
// later be audited against a frozen materialization of their exact epoch.
type snapTracker struct {
	mu sync.Mutex
	m  map[uint64]*livegraph.Snapshot
}

func newSnapTracker(lg *livegraph.LiveGraph) *snapTracker {
	st := &snapTracker{m: make(map[uint64]*livegraph.Snapshot)}
	s := lg.Acquire()
	st.m[s.Epoch()] = s
	return st
}

func (st *snapTracker) add(s *livegraph.Snapshot) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.m[s.Epoch()]; ok {
		s.Release()
		return
	}
	st.m[s.Epoch()] = s
}

func (st *snapTracker) get(t *testing.T, epoch uint64) *livegraph.Snapshot {
	t.Helper()
	st.mu.Lock()
	defer st.mu.Unlock()
	s, ok := st.m[epoch]
	if !ok {
		t.Fatalf("no pinned snapshot for epoch %d", epoch)
	}
	return s
}

func (st *snapTracker) releaseAll() {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, s := range st.m {
		s.Release()
	}
	st.m = map[uint64]*livegraph.Snapshot{}
}

// materialized returns (building once per epoch) the frozen MemGraph copy of
// the tracked snapshot — the serial-reference world for that epoch.
type refWorlds struct {
	st *snapTracker
	mu sync.Mutex
	m  map[uint64]*graph.MemGraph
}

func (r *refWorlds) get(t *testing.T, epoch uint64) *graph.MemGraph {
	t.Helper()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.m == nil {
		r.m = make(map[uint64]*graph.MemGraph)
	}
	if g, ok := r.m[epoch]; ok {
		return g
	}
	g, err := r.st.get(t, epoch).Materialize()
	if err != nil {
		t.Fatalf("materialize epoch %d: %v", epoch, err)
	}
	r.m[epoch] = g
	return g
}

// TestLiveGoldenEquivalence is the golden concurrency test: queries running
// against a live pool while a writer publishes new snapshots must return
// results byte-identical to a serial TopK run on a frozen (materialized)
// copy of the exact snapshot each query pinned — for all five measures, both
// cold (first execution) and warm (reused engine workspace). The cache is
// disabled so every response is a real execution.
func TestLiveGoldenEquivalence(t *testing.T) {
	const n = 2000
	base := liveTestGraph(t, n, 6000, 3)
	lg := livegraph.New(base)
	st := newSnapTracker(lg)
	defer st.releaseAll()
	refs := &refWorlds{st: st}

	pool := New(lg, Config{Workers: 2, QueueDepth: 64, CacheEntries: -1})
	defer pool.Close()

	kinds := []measure.Kind{measure.PHP, measure.EI, measure.DHT, measure.THT, measure.RWR}
	lget := graph.LargestComponentNodes(base)
	ctx := context.Background()

	clients, iters, steps := 4, 40, 400
	if testing.Short() {
		clients, iters, steps = 2, 15, 150
	}

	// Writer: publish a stream of snapshots concurrently with the queries.
	// Single writer, so Acquire right after Apply pins exactly the snapshot
	// the batch published.
	stop := make(chan struct{})
	var wgW sync.WaitGroup
	wgW.Add(1)
	go func() {
		defer wgW.Done()
		for step := 0; step < steps; step++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, _, err := lg.Apply(liveMutation(n, step, 6)); err != nil {
				t.Error(err)
				return
			}
			st.add(lg.Acquire())
			time.Sleep(100 * time.Microsecond)
		}
	}()

	type got struct {
		req  Request
		resp *Response
	}
	var (
		mu      sync.Mutex
		results []got
		wgR     sync.WaitGroup
	)
	for c := 0; c < clients; c++ {
		wgR.Add(1)
		go func(c int) {
			defer wgR.Done()
			for i := 0; i < iters; i++ {
				req := Request{
					Query: lget[(c*911+i*7919)%len(lget)],
					Opt:   core.DefaultOptions(kinds[(c+i)%len(kinds)], 10),
				}
				// cold, then warm on the same workspace-holding pool
				for pass := 0; pass < 2; pass++ {
					resp, err := pool.Do(ctx, req)
					if err != nil {
						t.Error(err)
						return
					}
					mu.Lock()
					results = append(results, got{req, resp})
					mu.Unlock()
				}
			}
		}(c)
	}
	wgR.Wait()
	close(stop)
	wgW.Wait()
	if t.Failed() {
		return
	}

	for _, r := range results {
		world := refs.get(t, r.resp.Epoch)
		want, err := core.TopK(world, r.req.Query, r.req.Opt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r.resp.TopK.TopK, want.TopK) {
			t.Fatalf("epoch %d query %d measure %v: pooled result diverges from serial run on frozen snapshot\n got %v\nwant %v",
				r.resp.Epoch, r.req.Query, r.req.Opt.Measure, r.resp.TopK.TopK, want.TopK)
		}
		if !r.resp.TopK.Exact {
			t.Fatalf("epoch %d query %d: result not certified exact", r.resp.Epoch, r.req.Query)
		}
	}
}

// TestMutateUnderTrafficStress hammers a cache-enabled live pool with
// concurrent clients while a writer mutates continuously, then audits a
// sample of responses (cache hits included) with a full global-iteration
// certification against the frozen copy of each response's epoch. This is
// the -race CI stress: it exercises pinning, surgical invalidation,
// re-keying, and warm-started re-certification all racing each other.
func TestMutateUnderTrafficStress(t *testing.T) {
	const n = 1200
	base := liveTestGraph(t, n, 3600, 9)
	lg := livegraph.New(base)
	st := newSnapTracker(lg)
	defer st.releaseAll()
	refs := &refWorlds{st: st}

	pool := New(lg, Config{Workers: 4, QueueDepth: 64, CacheEntries: 512})
	defer pool.Close()

	kinds := []measure.Kind{measure.PHP, measure.EI, measure.DHT, measure.THT, measure.RWR}
	lget := graph.LargestComponentNodes(base)
	ctx := context.Background()

	iters := 60
	clients := 4
	if testing.Short() {
		iters = 20
	}

	stop := make(chan struct{})
	var wgW sync.WaitGroup
	wgW.Add(1)
	go func() {
		defer wgW.Done()
		for step := 0; step < 500; step++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := pool.Mutate(liveMutation(n, step, 4)); err != nil {
				t.Error(err)
				return
			}
			st.add(lg.Acquire())
			time.Sleep(100 * time.Microsecond)
		}
	}()

	type got struct {
		req  Request
		resp *Response
	}
	var (
		mu      sync.Mutex
		sampled []got
		wgR     sync.WaitGroup
	)
	for c := 0; c < clients; c++ {
		wgR.Add(1)
		go func(c int) {
			defer wgR.Done()
			for i := 0; i < iters; i++ {
				req := Request{
					// A small hot set so cache hits, invalidations, and
					// re-certifications all actually happen under race.
					Query: lget[(c+i)%16],
					Opt:   core.DefaultOptions(kinds[i%len(kinds)], 8),
				}
				resp, err := pool.Do(ctx, req)
				if err != nil {
					t.Error(err)
					return
				}
				if resp.Unified == nil && resp.TopK == nil {
					t.Error("response carries no result")
					return
				}
				if i%6 == c%6 {
					mu.Lock()
					sampled = append(sampled, got{req, resp})
					mu.Unlock()
				}
			}
		}(c)
	}
	wgR.Wait()
	close(stop)
	wgW.Wait()
	if t.Failed() {
		return
	}

	if len(sampled) == 0 {
		t.Fatal("no responses sampled")
	}
	for _, r := range sampled {
		world := refs.get(t, r.resp.Epoch)
		// Certify audits the top-k against a full global-iteration solve on
		// the frozen world — warm-started re-certifications are exact but not
		// trajectory-identical, so the audit is against ground truth, not a
		// replayed search.
		if err := core.Certify(world, r.req.Query, r.resp.TopK, r.req.Opt.Measure, r.req.Opt.Params, 1e-7); err != nil {
			t.Fatalf("epoch %d query %d measure %v: %v", r.resp.Epoch, r.req.Query, r.req.Opt.Measure, err)
		}
	}

	m := pool.Metrics()
	if m.SnapshotsTotal < 2 {
		t.Fatalf("writer published no snapshots (total %d)", m.SnapshotsTotal)
	}
	if m.InvalidationsSurgical+m.CacheRetained == 0 {
		t.Fatal("no surgical invalidation activity despite mutations under traffic")
	}
	t.Logf("snapshots=%d surgical=%d retained=%d recert=%d hits=%d misses=%d",
		m.SnapshotsTotal, m.InvalidationsSurgical, m.CacheRetained, m.RecertifyHits, m.CacheHits, m.CacheMisses)
}

// TestSurgicalInvalidationDisjointRetains checks the core cache contract: a
// mutation batch disjoint from every cached footprint retains the entries
// (re-keyed to the new epoch, still serving hits), while a batch touching a
// footprint evicts exactly those entries and the recompute warm-starts as a
// re-certification.
func TestSurgicalInvalidationDisjointRetains(t *testing.T) {
	// Community component carries the queries; an isolated ring receives
	// mutations, provably outside any query footprint.
	const n, block = 1500, 16
	comm := liveTestGraph(t, n, 4500, 5)
	b := graph.NewBuilder(n + block)
	for u := 0; u < comm.NumNodes(); u++ {
		nbrs, wts := comm.Neighbors(graph.NodeID(u))
		for i, v := range nbrs {
			if graph.NodeID(u) < v {
				if err := b.AddEdge(graph.NodeID(u), v, wts[i]); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	for i := 0; i < block; i++ {
		if err := b.AddEdge(graph.NodeID(n+i), graph.NodeID(n+(i+1)%block), 1); err != nil {
			t.Fatal(err)
		}
	}
	base, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	lg := livegraph.New(base)
	pool := New(lg, Config{Workers: 2, QueueDepth: 16, CacheEntries: 128})
	defer pool.Close()
	ctx := context.Background()

	lget := graph.LargestComponentNodes(base)
	reqs := make([]Request, 8)
	for i := range reqs {
		reqs[i] = Request{Query: lget[i*31%len(lget)], Opt: core.DefaultOptions(measure.PHP, 5)}
	}
	for _, r := range reqs {
		if _, err := pool.Do(ctx, r); err != nil {
			t.Fatal(err)
		}
	}

	// Disjoint mutation: isolated block only -> all entries retained.
	newEpoch, err := pool.Mutate([]livegraph.EdgeOp{
		{Op: livegraph.OpSet, U: graph.NodeID(n), V: graph.NodeID(n + 1), W: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := pool.Metrics()
	if m.InvalidationsSurgical != 0 || m.CacheRetained != int64(len(reqs)) {
		t.Fatalf("disjoint batch: surgical=%d retained=%d, want 0/%d",
			m.InvalidationsSurgical, m.CacheRetained, len(reqs))
	}
	resp, err := pool.Do(ctx, reqs[0])
	if err != nil {
		t.Fatal(err)
	}
	if !resp.CacheHit {
		t.Fatalf("retained entry did not serve a hit after disjoint mutation (epoch %d)", newEpoch)
	}

	// Touching mutation: upsert an edge incident to a query node — its
	// footprint certainly contains the query itself.
	before := pool.Metrics()
	if _, err := pool.Mutate([]livegraph.EdgeOp{
		{Op: livegraph.OpSet, U: reqs[0].Query, V: lget[500%len(lget)], W: 2},
	}); err != nil {
		t.Fatal(err)
	}
	after := pool.Metrics()
	if after.InvalidationsSurgical <= before.InvalidationsSurgical {
		t.Fatalf("touching batch evicted nothing (surgical %d -> %d)",
			before.InvalidationsSurgical, after.InvalidationsSurgical)
	}

	// The recompute of the evicted entry warm-starts (re-certification).
	resp, err = pool.Do(ctx, reqs[0])
	if err != nil {
		t.Fatal(err)
	}
	if resp.CacheHit {
		t.Fatal("evicted entry served a cache hit")
	}
	if got := pool.Metrics().RecertifyHits; got != 1 {
		t.Fatalf("RecertifyHits = %d, want 1", got)
	}
	// And the warm-started answer is still exact on the new world.
	snap := lg.Acquire()
	defer snap.Release()
	world, err := snap.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Certify(world, reqs[0].Query, resp.TopK, measure.PHP, reqs[0].Opt.Params, 1e-7); err != nil {
		t.Fatalf("re-certified answer wrong: %v", err)
	}
}

// TestMutateErrors covers the non-live guard and atomic batch failure.
func TestMutateErrors(t *testing.T) {
	base := liveTestGraph(t, 200, 600, 1)
	pool := New(base, Config{Workers: 1})
	defer pool.Close()
	if _, err := pool.Mutate(nil); !errors.Is(err, ErrNotLive) {
		t.Fatalf("Mutate on non-live pool: %v, want ErrNotLive", err)
	}

	lg := livegraph.New(liveTestGraph(t, 200, 600, 2))
	lp := New(lg, Config{Workers: 1})
	defer lp.Close()
	epoch0 := lp.Epoch()
	// Find a guaranteed-missing edge so OpRemove must fail.
	missing := graph.NodeID(-1)
	nbrs, _ := lg.Neighbors(150)
	for v := graph.NodeID(151); int(v) < lg.NumNodes(); v++ {
		adjacent := false
		for _, u := range nbrs {
			if u == v {
				adjacent = true
				break
			}
		}
		if !adjacent {
			missing = v
			break
		}
	}
	if missing < 0 {
		t.Fatal("node 150 adjacent to every later node")
	}
	// Second op invalid (removing a missing edge): whole batch must abort,
	// leaking nothing — including the valid first op.
	wBefore := weightOf(t, lg, 0, 1)
	if _, err := lp.Mutate([]livegraph.EdgeOp{
		{Op: livegraph.OpSet, U: 0, V: 1, W: wBefore + 5},
		{Op: livegraph.OpRemove, U: 150, V: missing},
	}); err == nil {
		t.Fatal("expected batch error")
	}
	if got := lp.Epoch(); got != epoch0 {
		t.Fatalf("failed batch advanced epoch %d -> %d", epoch0, got)
	}
	if w := weightOf(t, lg, 0, 1); w != wBefore {
		t.Fatalf("aborted batch leaked: weight(0,1) %v -> %v", wBefore, w)
	}
}

func weightOf(t *testing.T, g graph.Graph, u, v graph.NodeID) float64 {
	t.Helper()
	nbrs, wts := g.Neighbors(u)
	for i, x := range nbrs {
		if x == v {
			return wts[i]
		}
	}
	return 0
}

// TestBumpEpochLiveFullFlush checks the deprecated path on a live pool: the
// whole cache (and the stale store) drops, counted as a full invalidation.
func TestBumpEpochLiveFullFlush(t *testing.T) {
	lg := livegraph.New(liveTestGraph(t, 400, 1200, 4))
	pool := New(lg, Config{Workers: 1, CacheEntries: 64})
	defer pool.Close()
	ctx := context.Background()
	req := Request{Query: 1, Opt: core.DefaultOptions(measure.PHP, 5)}
	if _, err := pool.Do(ctx, req); err != nil {
		t.Fatal(err)
	}
	pool.BumpEpoch()
	m := pool.Metrics()
	if m.InvalidationsFull != 1 {
		t.Fatalf("InvalidationsFull = %d, want 1", m.InvalidationsFull)
	}
	if m.CacheEntries != 0 {
		t.Fatalf("cache holds %d entries after full flush", m.CacheEntries)
	}
	resp, err := pool.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.CacheHit {
		t.Fatal("hit after full flush")
	}
}

// TestLiveResponseEpoch checks that responses carry the pinned snapshot's
// epoch and that it matches the pool's published epoch in a quiescent pool.
func TestLiveResponseEpoch(t *testing.T) {
	lg := livegraph.New(liveTestGraph(t, 400, 1200, 6))
	pool := New(lg, Config{Workers: 1, CacheEntries: 64})
	defer pool.Close()
	ctx := context.Background()
	resp, err := pool.Do(ctx, Request{Query: 2, Opt: core.DefaultOptions(measure.RWR, 5)})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Epoch != lg.Epoch() {
		t.Fatalf("response epoch %d, graph epoch %d", resp.Epoch, lg.Epoch())
	}
	if _, err := pool.Mutate(liveMutation(400, 1, 2)); err != nil {
		t.Fatal(err)
	}
	resp2, err := pool.Do(ctx, Request{Query: 3, Opt: core.DefaultOptions(measure.RWR, 5)})
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Epoch != resp.Epoch+1 {
		t.Fatalf("epoch did not advance: %d -> %d", resp.Epoch, resp2.Epoch)
	}
}
