package qserve

import (
	"sync/atomic"
	"time"

	"flos/internal/obs"
)

// measureLabels are the latency-histogram labels, indexed by measure.Kind
// (PHP..RWR) with one extra slot for unified queries. Prometheus and the
// JSON snapshot both key by these strings.
var measureLabels = [...]string{"php", "ei", "dht", "tht", "rwr", "unified"}

// unifiedSlot is the histogram slot of unified (two-family) queries.
const unifiedSlot = len(measureLabels) - 1

// metricsSlot maps a request onto its per-measure histogram slot.
func metricsSlot(req Request) int {
	if req.Unified {
		return unifiedSlot
	}
	if k := int(req.Opt.Measure); k >= 0 && k < unifiedSlot {
		return k
	}
	return unifiedSlot // unknown kinds share the last slot rather than panic
}

// metrics is the pool's internal counter set. Counters are independent
// atomics and the latency histograms are lock-free (obs.Histogram), so the
// hot path never takes a lock — the old implementation sorted a 2048-entry
// ring under a mutex on every snapshot and its truncating percentile index
// under-reported p99 on small windows.
type metrics struct {
	served      atomic.Int64
	shed        atomic.Int64
	interrupted atomic.Int64
	batches     atomic.Int64

	// Outcome split of served queries. ok counts executed successes and hit
	// counts result-cache answers, so ok + hit + deadline + canceled +
	// failed == served (the parity the SLO availability math relies on —
	// before the hit counter, cache answers vanished from the outcome
	// breakdown entirely). deadline + canceled = interrupted; failed counts
	// non-context errors.
	ok       atomic.Int64
	hit      atomic.Int64
	deadline atomic.Int64
	canceled atomic.Int64
	failed   atomic.Int64

	// anytimePartial counts anytime-mode queries whose deadline fired
	// mid-search: they completed as "ok" (200 with a certification block)
	// but returned an uncertified partial top-k. A subset of ok, tracked
	// separately so operators can see how often deadlines actually bind.
	anytimePartial atomic.Int64

	// hitByMeasure mirrors the per-measure latency histograms for cache
	// hits, which never enter those histograms: per measure, executed count
	// (latByMeasure[i].Count()) + hitByMeasure[i] covers every served query.
	hitByMeasure [len(measureLabels)]atomic.Int64

	// Work totals accumulated from completed and interrupted searches.
	iterations atomic.Int64
	visited    atomic.Int64
	sweeps     atomic.Int64

	// Invalidation split. invalFull counts whole-cache flushes (BumpEpoch);
	// invalSurgical counts entries individually evicted because a mutation
	// batch touched their read footprint; retained counts entries a batch
	// carried forward untouched; recertHits counts stale entries re-certified
	// by a warm-started search instead of a cold recompute.
	invalFull     atomic.Int64
	invalSurgical atomic.Int64
	retained      atomic.Int64
	recertHits    atomic.Int64

	// Last-batch gauges (stored, not accumulated): how the most recent
	// mutation batch split the cache into surgically evicted entries and
	// survivors. The cumulative counters above tell you how much
	// invalidation has happened; these tell you what the last batch did —
	// the steady-state "survivors per epoch" view.
	lastBatchSurgical atomic.Int64
	lastBatchRetained atomic.Int64

	lat          obs.Histogram // all executed (non-cache-hit) queries
	latByMeasure [len(measureLabels)]obs.Histogram
}

// observe records one executed query's latency, tagging the landed buckets
// with the request ID and trace ID as their exemplar (either may be empty).
func (m *metrics) observe(slot int, d time.Duration, id, traceID string) {
	m.lat.ObserveExemplar(d, id, traceID)
	m.latByMeasure[slot].ObserveExemplar(d, id, traceID)
}

// observeHit accounts one result-cache answer.
func (m *metrics) observeHit(slot int) {
	m.hit.Add(1)
	m.hitByMeasure[slot].Add(1)
}

func (m *metrics) addWork(iterations, visited, sweeps int) {
	m.iterations.Add(int64(iterations))
	m.visited.Add(int64(visited))
	m.sweeps.Add(int64(sweeps))
}

func (m *metrics) snapshot() Metrics {
	lat := m.lat.Snapshot()
	out := Metrics{
		Served:                m.served.Load(),
		Shed:                  m.shed.Load(),
		Interrupted:           m.interrupted.Load(),
		Batches:               m.batches.Load(),
		OK:                    m.ok.Load(),
		Hit:                   m.hit.Load(),
		Deadline:              m.deadline.Load(),
		Canceled:              m.canceled.Load(),
		Failed:                m.failed.Load(),
		AnytimePartial:        m.anytimePartial.Load(),
		IterationsTotal:       m.iterations.Load(),
		VisitedTotal:          m.visited.Load(),
		SweepsTotal:           m.sweeps.Load(),
		InvalidationsFull:     m.invalFull.Load(),
		InvalidationsSurgical: m.invalSurgical.Load(),
		CacheRetained:         m.retained.Load(),
		RecertifyHits:         m.recertHits.Load(),
		LastBatchSurgical:     m.lastBatchSurgical.Load(),
		LastBatchRetained:     m.lastBatchRetained.Load(),
		P50Micros:             lat.QuantileUS(0.50),
		P99Micros:             lat.QuantileUS(0.99),
		Latency:               lat,
		LatencyByMeasure:      make(map[string]obs.Snapshot),
	}
	for i := range m.latByMeasure {
		if s := m.latByMeasure[i].Snapshot(); s.Count > 0 {
			out.LatencyByMeasure[measureLabels[i]] = s
		}
		if h := m.hitByMeasure[i].Load(); h > 0 {
			if out.HitByMeasure == nil {
				out.HitByMeasure = make(map[string]int64)
			}
			out.HitByMeasure[measureLabels[i]] = h
		}
	}
	return out
}

// Metrics is a point-in-time snapshot of pool behavior, the source for the
// server's /metrics endpoint (both the Prometheus and JSON forms).
type Metrics struct {
	// Served counts queries answered (including cache hits and queries that
	// ended in cancellation); Shed counts admissions refused with
	// ErrOverloaded; Interrupted counts queries ended by context.
	Served, Shed, Interrupted int64
	// OK counts executed successes and Hit result-cache answers; with the
	// interrupted/failed counters below they partition Served exactly:
	// OK + Hit + Deadline + Canceled + Failed == Served.
	OK, Hit int64
	// Deadline and Canceled split Interrupted by cause; Failed counts
	// queries that ended in a non-context error.
	Deadline, Canceled, Failed int64
	// AnytimePartial counts anytime-mode queries whose deadline fired
	// mid-search and returned an uncertified partial top-k. These are
	// successes (a subset of OK), not interruptions.
	AnytimePartial int64
	// HitByMeasure splits Hit by measure label (cache hits never enter
	// LatencyByMeasure, so per-measure served = histogram count + this);
	// labels with no hits are omitted and the map is nil when empty.
	HitByMeasure map[string]int64
	// Batches counts DoBatch calls; their member queries are accounted in
	// the per-query counters above.
	Batches int64
	// IterationsTotal / VisitedTotal / SweepsTotal accumulate the engine
	// work counters over every executed search, interrupted ones included —
	// visited-per-query is the paper's locality metric, so the ratio
	// VisitedTotal/Served tracks how local production traffic actually is.
	IterationsTotal, VisitedTotal, SweepsTotal int64
	// P50Micros / P99Micros are conservative (round-up) latency quantiles
	// over all executed (non-cache-hit) queries, kept for compatibility
	// with the pre-histogram snapshot. Unlike the old ring-buffer window
	// they cover the pool's lifetime.
	P50Micros, P99Micros int64
	// Latency is the full log-bucketed latency histogram; LatencyByMeasure
	// splits it per measure label ("php", "ei", "dht", "tht", "rwr",
	// "unified"), omitting labels with no observations.
	Latency          obs.Snapshot
	LatencyByMeasure map[string]obs.Snapshot
	// QueueDepth is the current number of admitted-but-waiting queries;
	// QueueCap its bound; Workers the worker count.
	QueueDepth, QueueCap, Workers int
	// Cache counters; zero when the cache is disabled. CacheEntries is the
	// live entry count (occupancy) and CacheCapacity its configured bound,
	// so CacheEntries/CacheCapacity is the steady-state fill ratio.
	CacheHits, CacheMisses, CacheEvictions int64
	CacheEntries, CacheCapacity            int
	// Epoch is the current invalidation epoch. On a live pool it mirrors the
	// current snapshot's epoch.
	Epoch uint64
	// Invalidation split. InvalidationsFull counts whole-cache flushes
	// (BumpEpoch, the deprecated path); InvalidationsSurgical counts entries
	// individually invalidated because a mutation batch intersected their
	// read footprint; CacheRetained counts entries carried forward across a
	// batch untouched; RecertifyHits counts stale entries answered by a
	// warm-started re-certification instead of a cold recompute.
	InvalidationsFull, InvalidationsSurgical int64
	CacheRetained, RecertifyHits             int64
	// LastBatchSurgical / LastBatchRetained are gauges describing only the
	// most recent mutation batch: entries it evicted surgically and entries
	// it carried forward (the per-epoch survivor count).
	LastBatchSurgical, LastBatchRetained int64
	// Live-graph gauges, zero on non-live pools: snapshots currently
	// referenced, snapshots ever published, adjacency rows copy-on-write
	// re-materialized, and edge ops applied.
	SnapshotsAlive, SnapshotsTotal int64
	RowsCoWed, OpsApplied          int64
}

// CacheHitRatio returns hits/(hits+misses), 0 when no lookups happened.
func (m Metrics) CacheHitRatio() float64 {
	tot := m.CacheHits + m.CacheMisses
	if tot == 0 {
		return 0
	}
	return float64(m.CacheHits) / float64(tot)
}
