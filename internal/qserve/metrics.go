package qserve

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latWindow is how many recent query latencies the percentile estimator
// keeps; old observations are overwritten ring-style, so P50/P99 describe
// the recent window, not all time.
const latWindow = 2048

// metrics is the pool's internal counter set.
type metrics struct {
	served      atomic.Int64
	shed        atomic.Int64
	interrupted atomic.Int64

	mu  sync.Mutex
	lat [latWindow]int64 // microseconds
	n   int64            // total observations ever
}

func (m *metrics) observe(d time.Duration) {
	us := d.Microseconds()
	m.mu.Lock()
	m.lat[m.n%latWindow] = us
	m.n++
	m.mu.Unlock()
}

// percentiles returns (p50, p99) in microseconds over the recent window.
func (m *metrics) percentiles() (int64, int64) {
	m.mu.Lock()
	n := m.n
	if n > latWindow {
		n = latWindow
	}
	sample := make([]int64, n)
	copy(sample, m.lat[:n])
	m.mu.Unlock()
	if len(sample) == 0 {
		return 0, 0
	}
	sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
	at := func(p float64) int64 {
		i := int(p * float64(len(sample)-1))
		return sample[i]
	}
	return at(0.50), at(0.99)
}

func (m *metrics) snapshot() Metrics {
	p50, p99 := m.percentiles()
	return Metrics{
		Served:      m.served.Load(),
		Shed:        m.shed.Load(),
		Interrupted: m.interrupted.Load(),
		P50Micros:   p50,
		P99Micros:   p99,
	}
}

// Metrics is a point-in-time snapshot of pool behavior, the source for the
// server's /metrics endpoint.
type Metrics struct {
	// Served counts queries answered (including cache hits and queries that
	// ended in cancellation); Shed counts admissions refused with
	// ErrOverloaded; Interrupted counts queries ended by context.
	Served, Shed, Interrupted int64
	// P50Micros / P99Micros are latency percentiles over the recent window
	// of executed (non-cache-hit) queries.
	P50Micros, P99Micros int64
	// QueueDepth is the current number of admitted-but-waiting queries;
	// QueueCap its bound; Workers the worker count.
	QueueDepth, QueueCap, Workers int
	// Cache counters; zero when the cache is disabled.
	CacheHits, CacheMisses, CacheEvictions int64
	CacheEntries                           int
	// Epoch is the current invalidation epoch.
	Epoch uint64
}

// CacheHitRatio returns hits/(hits+misses), 0 when no lookups happened.
func (m Metrics) CacheHitRatio() float64 {
	tot := m.CacheHits + m.CacheMisses
	if tot == 0 {
		return 0
	}
	return float64(m.CacheHits) / float64(tot)
}
