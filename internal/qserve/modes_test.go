package qserve

import (
	"context"
	"testing"
	"time"

	"flos/internal/core"
	"flos/internal/gen"
	"flos/internal/measure"
)

// TestModeCacheAsymmetry pins the mode-aware result cache's one-way sharing
// rule: an exact entry serves the same query in ε (and anytime) mode — its
// gap is 0, within any budget — but an ε entry never serves an exact
// request, because its ranking is only certified to within ε.
func TestModeCacheAsymmetry(t *testing.T) {
	g, err := gen.Community(2000, 5400, gen.DefaultCommunityParams(), 3)
	if err != nil {
		t.Fatal(err)
	}
	pool := New(g, Config{Workers: 2, CacheEntries: 64})
	defer pool.Close()
	ctx := context.Background()

	exactReq := Request{Query: 11, Opt: core.DefaultOptions(measure.RWR, 10)}
	epsReq := exactReq
	epsReq.Opt.Mode = core.ModeEpsilon
	epsReq.Opt.Epsilon = 1e-3
	anyReq := exactReq
	anyReq.Opt.Mode = core.ModeAnytime

	// Cold exact query populates the cache.
	if _, err := pool.Do(ctx, exactReq); err != nil {
		t.Fatal(err)
	}
	if m := pool.Metrics(); m.CacheHits != 0 || m.CacheMisses != 1 {
		t.Fatalf("after cold exact: hits=%d misses=%d, want 0/1", m.CacheHits, m.CacheMisses)
	}

	// The ε request for the same query must hit the exact entry, and the
	// served answer satisfies the ε contract trivially (certified, gap 0).
	resp, err := pool.Do(ctx, epsReq)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.CacheHit {
		t.Fatalf("ε request did not hit the exact cache entry")
	}
	c := resp.TopK.Certification
	if !c.Certified || c.Gap > epsReq.Opt.Epsilon {
		t.Fatalf("exact-served ε answer not within budget: certified=%v gap=%g", c.Certified, c.Gap)
	}

	// Anytime rides the same fallback.
	resp, err = pool.Do(ctx, anyReq)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.CacheHit {
		t.Fatalf("anytime request did not hit the exact cache entry")
	}
	if m := pool.Metrics(); m.CacheHits != 2 {
		t.Fatalf("hits=%d, want 2", m.CacheHits)
	}

	// Converse direction: an ε entry for a different query must NOT serve
	// the later exact request.
	epsFirst := Request{Query: 1099, Opt: core.DefaultOptions(measure.RWR, 10)}
	epsFirst.Opt.Mode = core.ModeEpsilon
	epsFirst.Opt.Epsilon = 1e-3
	if _, err := pool.Do(ctx, epsFirst); err != nil {
		t.Fatal(err)
	}
	exactAfter := Request{Query: 1099, Opt: core.DefaultOptions(measure.RWR, 10)}
	resp, err = pool.Do(ctx, exactAfter)
	if err != nil {
		t.Fatal(err)
	}
	if resp.CacheHit {
		t.Fatalf("exact request was served from an ε cache entry")
	}
	if got := resp.TopK.Certification; got.Mode != core.ModeExact || !got.Certified || got.Gap > exactAfter.Opt.TieEps {
		t.Fatalf("exact recompute carries wrong certification: %+v", got)
	}

	// Different ε budgets are distinct keys (beyond the exact fallback): the
	// ε=1e-3 entry is cached under its own key and hits on repeat.
	if _, err := pool.Do(ctx, epsFirst); err != nil {
		t.Fatal(err)
	}
	if m := pool.Metrics(); m.CacheHits != 3 {
		t.Fatalf("repeat ε request: hits=%d, want 3", m.CacheHits)
	}
}

// TestAnytimePartialNotCached checks that an uncertified anytime partial is
// never cached — its content depends on where the deadline happened to land,
// not on the query — and that the pool counts it as an AnytimePartial
// success rather than an interruption.
func TestAnytimePartialNotCached(t *testing.T) {
	g, err := gen.Community(20000, 80000, gen.DefaultCommunityParams(), 5)
	if err != nil {
		t.Fatal(err)
	}
	pool := New(g, Config{Workers: 1, CacheEntries: 64})
	defer pool.Close()

	req := Request{Query: 1, Opt: core.DefaultOptions(measure.RWR, 50)}
	req.Opt.Mode = core.ModeAnytime
	run := func() *Response {
		t.Helper()
		ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
		defer cancel()
		resp, err := pool.Do(ctx, req)
		if err != nil {
			t.Fatalf("anytime query under expired deadline failed: %v", err)
		}
		return resp
	}

	first := run()
	if first.TopK.Certification.Certified {
		t.Fatalf("partial under expired deadline claims certified")
	}
	if first.CacheHit {
		t.Fatalf("first anytime query reported a cache hit on an empty cache")
	}
	second := run()
	if second.CacheHit {
		t.Fatalf("uncertified anytime partial was served from cache")
	}

	m := pool.Metrics()
	if m.AnytimePartial != 2 {
		t.Fatalf("AnytimePartial = %d, want 2", m.AnytimePartial)
	}
	if m.OK != 2 || m.Deadline != 0 {
		t.Fatalf("partials misclassified: OK=%d Deadline=%d, want 2/0", m.OK, m.Deadline)
	}
	if m.OK+m.Hit+m.Deadline+m.Canceled+m.Failed != m.Served {
		t.Fatalf("outcome partition broken: %+v", m)
	}

	// A certified anytime run (no deadline pressure) IS cached and serves
	// later requests.
	resp, err := pool.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.TopK.Certification.Certified {
		t.Fatalf("unpressured anytime run not certified")
	}
	resp, err = pool.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.CacheHit {
		t.Fatalf("certified anytime answer was not cached")
	}
}
