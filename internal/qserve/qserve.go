// Package qserve is the concurrent query-serving subsystem: it owns query
// execution end to end, between the HTTP layer (internal/server) and the
// search engine (internal/core).
//
// A Pool runs a bounded set of workers over a shared graph. Admission is a
// bounded queue that sheds load (Do returns ErrOverloaded immediately when
// the queue is full, so callers can answer 429 instead of stacking up
// goroutines), every query runs under a context with an optional pool-wide
// deadline, and completed answers populate an LRU result cache keyed by
// (graph epoch, query node, measure, params, k). The cache is invalidated
// wholesale by bumping the epoch — the contract dynamic graphs
// (internal/graph.DynamicGraph) follow after mutating edges.
//
// Concurrency over the graph backend rides on the graph.Viewer capability:
// backends that can mint independent read views (the immutable MemGraph
// returns itself; the disk store returns per-worker Readers sharing its
// lock-striped page cache) get one view per worker and queries proceed
// fully in parallel. Any other Graph implementation is assumed
// non-concurrent-safe and the pool serializes query execution around it
// (admission, caching and shedding still apply).
//
// Each worker owns one core engine workspace, so steady-state queries reuse
// the engine's slices and indexes instead of rebuilding them per request.
package qserve

import (
	"context"
	"errors"
	"log/slog"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"flos/internal/core"
	"flos/internal/core/kernel"
	"flos/internal/graph"
	"flos/internal/livegraph"
	"flos/internal/measure"
	"flos/internal/obs"
	"flos/internal/obs/cachelens"
	"flos/internal/obs/trace"
)

// Errors returned by Do without running the query.
var (
	// ErrOverloaded reports that the admission queue was full; the caller
	// should shed the request (HTTP 429) and retry later.
	ErrOverloaded = errors.New("qserve: admission queue full")
	// ErrClosed reports that the pool has been shut down.
	ErrClosed = errors.New("qserve: pool closed")
	// ErrNotLive reports a Mutate call on a pool whose graph backend is not
	// a livegraph.LiveGraph.
	ErrNotLive = errors.New("qserve: pool is not serving a live graph")
)

// Config tunes a Pool. The zero value selects sensible defaults.
type Config struct {
	// Workers is the number of query workers; 0 selects GOMAXPROCS.
	Workers int
	// QueueDepth bounds the admission queue; 0 selects 4×Workers. Requests
	// beyond Workers running + QueueDepth waiting are shed.
	QueueDepth int
	// CacheEntries bounds the result cache; 0 selects 1024, negative
	// disables caching.
	CacheEntries int
	// Timeout is the per-query wall-clock budget covering queue wait and
	// execution; 0 means no pool-imposed deadline.
	Timeout time.Duration
	// Logger, when non-nil, receives per-query debug records (query node,
	// measure, latency, outcome) and warn records for shed requests. Nil
	// keeps the pool silent.
	Logger *slog.Logger
	// Recorder, when non-nil, receives one FlightRecord per query outcome —
	// executed (with a down-sampled convergence trajectory), cache hit, and
	// shed — and promotes outliers into its slow-query log.
	Recorder *obs.FlightRecorder
	// SLO, when non-nil, receives every query outcome for burn-rate
	// accounting: successes and hits as good events, deadline/failure/shed
	// as errors. Client cancellations are excluded — they say nothing about
	// the server's objectives.
	SLO *obs.SLOTracker
	// CacheLens, when non-nil, observes every result-cache lookup and LRU
	// eviction for the cache analytics plane (miss-ratio curve, ghost list,
	// working-set windows). Ignored when caching is disabled. Size it with
	// Capacity = CacheEntries so the curve's 1x point is the deployed bound.
	CacheLens *cachelens.Lens
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 1024
	}
	return c
}

// Request names one query.
type Request struct {
	// ID is the request identifier threaded through the flight recorder and
	// histogram exemplars (the join key between a latency bucket and the
	// slow-query log). When empty and a recorder is configured, the pool
	// assigns one at admission.
	ID string
	// Query is the query node.
	Query graph.NodeID
	// Opt configures the search. A request with an iteration tracer
	// (Opt.Tracer) bypasses the result cache in both directions: the caller
	// wants the trajectory of a real execution, and per-query tracer state
	// must not be shared through cached responses. The serving mode
	// (Opt.Mode/Opt.Epsilon) participates in the cache key, with one
	// asymmetry: an exact entry may answer an ε or anytime request for the
	// same query, never the reverse. Under ModeAnytime a deadline (the
	// pool's Timeout or the caller's context) downgrades the answer to an
	// uncertified partial instead of killing the query with an error.
	Opt core.Options
	// Unified selects UnifiedTopK (both ranking families in one search)
	// instead of single-measure TopK.
	Unified bool
}

// Response is a completed query.
type Response struct {
	// TopK is set for single-measure requests.
	TopK *core.Result
	// Unified is set for unified requests.
	Unified *core.UnifiedResult
	// CacheHit reports that the answer came from the result cache.
	CacheHit bool
	// Epoch is the graph epoch the answer is valid for. On a live pool it is
	// the epoch of the snapshot the query was pinned to at admission; replay
	// tooling compares it against the current epoch to report staleness.
	Epoch uint64
}

// Pool executes queries on a bounded worker set.
type Pool struct {
	cfg   Config
	jobs  chan *job
	done  chan struct{}
	wg    sync.WaitGroup
	close sync.Once

	cache *resultCache
	epoch atomic.Uint64

	// live is non-nil when the graph backend is a livegraph.LiveGraph. Each
	// admitted query then pins the current snapshot (j.snap), runs entirely
	// against it, and caches under the snapshot's epoch; Mutate publishes new
	// snapshots and invalidates surgically. On live pools p.epoch merely
	// mirrors the latest published epoch for Metrics — cache keys come from
	// the pinned snapshot, never from this mirror, so an admission racing a
	// publish stays consistent.
	live *livegraph.LiveGraph
	// mutateMu serializes Mutate's apply→invalidate sequence so the cache
	// walk of batch N completes before batch N+1 starts retiring epoch N.
	mutateMu sync.Mutex
	// stale parks visited sets of surgically invalidated entries for the
	// re-certification warm start; nil when caching is off or the pool is
	// not live.
	stale *staleStore

	// serialMu is non-nil when the graph backend is not concurrent-safe;
	// workers hold it for the duration of each search.
	serialMu *sync.Mutex

	// tokens coordinates intra-query solver parallelism with inter-query
	// worker parallelism. The budget is GOMAXPROCS CPU slots shared by the
	// whole pool: a worker holds one slot while executing a query, and a
	// query's parallel bound-solver kernel may claim the leftover slots for
	// extra sweep goroutines. At full pool load the budget is drained, every
	// kernel degrades to its single-goroutine schedule (results are
	// identical by construction — tokens change wall clock, never values),
	// and batch throughput is unaffected; on a lightly loaded pool a lone
	// parallel query gets the idle cores.
	tokens *kernel.TokenBudget

	met metrics
	rec *obs.FlightRecorder
	slo *obs.SLOTracker
}

type job struct {
	ctx    context.Context
	cancel context.CancelFunc
	req    Request
	key    cacheKey
	cached bool // key is valid and the answer should be cached
	out    chan outcome

	// Live-mode state: the snapshot pinned at admission (the whole query
	// runs against it), its epoch, and whether the run warm-starts from a
	// stale entry's visited set (a re-certification).
	snap   *livegraph.Snapshot
	epoch  uint64
	recert bool

	// Span-tracing state, resolved once at prepare: the request's active
	// trace (nil when untraced — every use below is nil-safe), the span the
	// pool's spans parent under, its hex trace ID (the exemplar /
	// flight-record join key), and the open admission-wait span.
	trace   *trace.Active
	parent  trace.SpanID
	traceID string
	queue   *trace.SpanHandle
}

// discard releases the job's resources without running it: the deadline
// context (if any) and the pinned snapshot. Safe to call more than once.
func (j *job) discard() {
	if j.cancel != nil {
		j.cancel()
	}
	if j.snap != nil {
		j.snap.Release()
		j.snap = nil
	}
}

type outcome struct {
	resp *Response
	err  error
}

// New builds a Pool serving queries against g and starts its workers. Call
// Close to release them.
func New(g graph.Graph, cfg Config) *Pool {
	cfg = cfg.withDefaults()
	p := &Pool{
		cfg:    cfg,
		jobs:   make(chan *job, cfg.QueueDepth),
		done:   make(chan struct{}),
		rec:    cfg.Recorder,
		slo:    cfg.SLO,
		tokens: kernel.NewTokenBudget(runtime.GOMAXPROCS(0)),
	}
	if cfg.CacheEntries > 0 {
		p.cache = newResultCache(cfg.CacheEntries, cfg.CacheLens)
	}
	if lg, ok := g.(*livegraph.LiveGraph); ok {
		p.live = lg
		p.epoch.Store(lg.Epoch())
		if p.cache != nil {
			p.stale = newStaleStore(cfg.CacheEntries)
		}
	}

	views := make([]graph.Graph, cfg.Workers)
	if v, ok := g.(graph.Viewer); ok {
		for i := range views {
			views[i] = v.NewView()
		}
	} else {
		p.serialMu = &sync.Mutex{}
		for i := range views {
			views[i] = g
		}
	}
	p.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go p.worker(views[i])
	}
	return p
}

// Close stops the workers. In-flight queries finish; queued and future Do
// calls return ErrClosed.
func (p *Pool) Close() {
	p.close.Do(func() { close(p.done) })
	p.wg.Wait()
	// Workers are gone; drain abandoned queue entries so their pinned
	// snapshots are released.
	for {
		select {
		case j := <-p.jobs:
			j.discard()
		default:
			return
		}
	}
}

// Epoch returns the current graph epoch the result cache is keyed by.
func (p *Pool) Epoch() uint64 { return p.epoch.Load() }

// BumpEpoch invalidates every cached result at once.
//
// Deprecated: on live pools this full flush is superseded by Mutate, which
// publishes the topology change AND invalidates surgically — only entries
// whose read footprint the batch touched are evicted. BumpEpoch remains the
// contract for external mutation of non-live backends (DynamicGraph): call
// it after AddEdge/RemoveEdge so queries admitted afterwards read fresh
// topology and repopulate the cache under the new epoch. Either way the call
// counts toward Metrics.InvalidationsFull.
func (p *Pool) BumpEpoch() {
	p.met.invalFull.Add(1)
	if p.live != nil {
		// Epochs are owned by the snapshot chain on live pools; just drop
		// every entry and every parked warm-start seed.
		if p.cache != nil {
			p.cache.clear()
		}
		if p.stale != nil {
			p.stale.clear()
		}
		return
	}
	p.epoch.Add(1)
}

// Mutate applies a batch of edge mutations to the live graph, publishing one
// new snapshot, and surgically invalidates the result cache: an entry is
// evicted only if the batch touched a node in its recorded read footprint
// (or, for RWR-guarded entries, raised a touched node's degree above the
// certified w(S̄) ceiling); every other entry is re-keyed to the new epoch
// and keeps serving hits. Evicted entries park their visited sets so the
// next recompute warm-starts (re-certification).
//
// Returns the new epoch. The batch is atomic: on error nothing is published
// and the cache is untouched. Returns ErrNotLive on non-live pools.
func (p *Pool) Mutate(ops []livegraph.EdgeOp) (uint64, error) {
	return p.MutateCtx(context.Background(), ops)
}

// MutateCtx is Mutate under a caller context: when the context carries an
// active trace, the snapshot publication ("livegraph.apply") and the
// surgical-invalidation walk ("qserve.cache.invalidate", with its
// evicted/retained verdict) become spans of the mutating request.
func (p *Pool) MutateCtx(ctx context.Context, ops []livegraph.EdgeOp) (uint64, error) {
	if p.live == nil {
		return 0, ErrNotLive
	}
	a, parent := trace.FromContext(ctx)
	p.mutateMu.Lock()
	defer p.mutateMu.Unlock()
	oldEpoch := p.epoch.Load()
	apply := a.StartSpan(parent, "livegraph.apply", trace.Int("ops", int64(len(ops))))
	snap, touched, err := p.live.Apply(ops)
	if err != nil {
		apply.SetError(err.Error())
		apply.End()
		return 0, err
	}
	newEpoch := snap.Epoch()
	apply.SetAttrs(trace.Int("touched", int64(len(touched))), trace.Int("epoch", int64(newEpoch)))
	apply.End()
	if newEpoch == oldEpoch { // empty batch: nothing published
		return newEpoch, nil
	}
	if p.cache != nil {
		inval := a.StartSpan(parent, "qserve.cache.invalidate")
		var maxTouchedDeg float64
		for _, v := range touched {
			if d := snap.Degree(v); d > maxTouchedDeg {
				maxTouchedDeg = d
			}
		}
		surgical, retained := p.cache.invalidate(oldEpoch, newEpoch, touched, maxTouchedDeg, p.stale)
		p.met.invalSurgical.Add(surgical)
		p.met.retained.Add(retained)
		p.met.lastBatchSurgical.Store(surgical)
		p.met.lastBatchRetained.Store(retained)
		inval.SetAttrs(trace.Int("surgical", surgical), trace.Int("retained", retained))
		inval.End()
	}
	p.epoch.Store(newEpoch)
	return newEpoch, nil
}

// Do executes one query, waiting for a worker. It returns ErrOverloaded
// when the admission queue is full, ErrClosed after Close, and passes
// through core's typed errors (core.ErrCanceled / core.ErrDeadline wrapped
// in *core.Interrupted) when ctx — or the pool's Timeout — fires first.
func (p *Pool) Do(ctx context.Context, req Request) (*Response, error) {
	select {
	case <-p.done:
		return nil, ErrClosed
	default:
	}

	start := time.Now()
	j, hit := p.prepare(ctx, req, start)
	if hit != nil {
		return hit, nil
	}

	// The admission-wait span opens before the enqueue attempt and is ended
	// by the worker at dequeue (or right here on a shed), so it covers the
	// whole time the request spent waiting rather than computing.
	j.queue = j.trace.StartSpan(j.parent, "qserve.queue.wait")
	select {
	case p.jobs <- j:
	default:
		j.queue.SetAttrs(trace.Str("outcome", "shed"), trace.Int("queue_cap", int64(p.cfg.QueueDepth)))
		j.queue.End()
		j.trace.Promote("shed")
		j.discard()
		p.recordShed(j.req, start, j.traceID)
		if p.cfg.Logger != nil {
			p.cfg.Logger.Warn("query shed", "query", req.Query, "queue_cap", p.cfg.QueueDepth)
		}
		return nil, ErrOverloaded
	}

	select {
	case o := <-j.out:
		return o.resp, o.err
	case <-p.done:
		return nil, ErrClosed
	}
}

// prepare resolves one request into an admittable job: assigns a request ID,
// pins the current live snapshot (the query's whole view of the world), and
// consults the result cache under the pinned epoch. A non-nil Response means
// the cache answered and no job needs to run. On a live-pool cache miss the
// job requests footprint capture, and — if a surgically invalidated ancestor
// parked its visited set — warm-starts from it as a re-certification.
func (p *Pool) prepare(ctx context.Context, req Request, start time.Time) (*job, *Response) {
	if p.rec != nil && req.ID == "" {
		req.ID = obs.NewRequestID()
	}
	j := &job{ctx: ctx, req: req, out: make(chan outcome, 1)}
	j.trace, j.parent = trace.FromContext(ctx)
	j.traceID = j.trace.TraceIDString()
	if p.live != nil {
		pin := j.trace.StartSpan(j.parent, "livegraph.pin")
		j.snap = p.live.Acquire()
		j.epoch = j.snap.Epoch()
		pin.SetAttrs(trace.Int("epoch", int64(j.epoch)))
		pin.End()
	} else {
		j.epoch = p.epoch.Load()
	}
	if p.cache != nil && req.Opt.Tracer == nil {
		j.key = keyOf(j.epoch, req)
		j.cached = true
		lookup := j.trace.StartSpan(j.parent, "qserve.cache.lookup")
		if resp, ok := p.cache.get(j.key); ok {
			lookup.SetAttrs(trace.Bool("hit", true))
			lookup.End()
			j.discard()
			p.recordHit(j.req, j.epoch, start, j.traceID)
			hit := *resp
			hit.CacheHit = true
			return nil, &hit
		}
		if p.live != nil {
			// Capture the read footprint so the completed answer can be
			// invalidated surgically. Not part of the cache key, so warm
			// non-live paths are unaffected.
			j.req.Opt.CaptureFootprint = true
			if p.stale != nil {
				if seeds, ok := p.stale.take(j.key); ok {
					j.req.Opt.WarmStart = seeds
					j.recert = true
				}
			}
		}
		lookup.SetAttrs(trace.Bool("hit", false), trace.Bool("recert", j.recert))
		lookup.End()
	}
	if p.cfg.Timeout > 0 {
		j.ctx, j.cancel = context.WithTimeout(ctx, p.cfg.Timeout)
	}
	return j, nil
}

// QueueDepth returns the number of admitted queries waiting for a worker.
func (p *Pool) QueueDepth() int { return len(p.jobs) }

// BatchResult is one request's slot in a DoBatch answer: exactly one of
// Resp and Err is set.
type BatchResult struct {
	Resp *Response
	Err  error
}

// DoBatch executes a batch of queries as one admitted unit and returns a
// slice parallel to reqs with every slot filled. Unlike Do, admission
// blocks instead of shedding — a batch the caller already holds is cheaper
// to queue than to retry — but it stays cancelable: when ctx (or the pool's
// per-query Timeout) fires mid-batch, finished slots keep their results,
// running queries stop promptly, and every unstarted slot gets a
// *core.Interrupted error. The call never hangs; after Close every
// remaining slot reports ErrClosed.
func (p *Pool) DoBatch(ctx context.Context, reqs []Request) []BatchResult {
	out := make([]BatchResult, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	start := time.Now()
	p.met.batches.Add(1)

	jobs := make([]*job, len(reqs))
	// One span per batch slot: each slot's pin/cache/queue/execute spans nest
	// under its own "qserve.slot", so the fan-out reads as parallel branches
	// of the request's span tree.
	slots := make([]*trace.SpanHandle, len(reqs))
	submitted := 0
admit:
	for i, req := range reqs {
		select {
		case <-p.done:
			out[i].Err = ErrClosed
			continue
		default:
		}
		slotCtx, slot := trace.StartSpan(ctx, "qserve.slot",
			trace.Int("slot", int64(i)), trace.Int("query", int64(req.Query)))
		slots[i] = slot
		j, hit := p.prepare(slotCtx, req, start)
		if hit != nil {
			out[i].Resp = hit
			slot.End()
			continue
		}
		j.queue = j.trace.StartSpan(j.parent, "qserve.queue.wait")
		select {
		case p.jobs <- j:
			jobs[i] = j
			submitted++
		case <-ctx.Done():
			j.queue.SetAttrs(trace.Str("outcome", "canceled"))
			j.queue.End()
			j.discard()
			// Mark this and every remaining slot unstarted and stop
			// admitting; slots already submitted still drain below.
			for r := i; r < len(reqs); r++ {
				if jobs[r] == nil && out[r].Resp == nil && out[r].Err == nil {
					out[r].Err = interruptedZero(ctx.Err())
				}
			}
			slot.End()
			break admit
		case <-p.done:
			j.queue.End()
			j.discard()
			out[i].Err = ErrClosed
			slot.End()
		}
	}
	for i, j := range jobs {
		if j == nil {
			continue
		}
		select {
		case o := <-j.out:
			out[i].Resp, out[i].Err = o.resp, o.err
		case <-p.done:
			out[i].Err = ErrClosed
		}
		slots[i].End()
	}
	return out
}

// recordHit accounts one result-cache answer across the counters, the SLO
// tracker (a good event), and the flight recorder (no trajectory: nothing
// executed). Hits never enter the executed-latency histograms, so the
// per-measure parity is histogram count + hitByMeasure.
func (p *Pool) recordHit(req Request, epoch uint64, start time.Time, traceID string) {
	p.met.served.Add(1)
	p.met.observeHit(metricsSlot(req))
	elapsed := time.Since(start)
	if p.slo != nil {
		p.slo.Record(elapsed, true)
	}
	if p.rec != nil {
		p.rec.Record(&obs.FlightRecord{
			ID:        req.ID,
			TraceID:   traceID,
			Start:     start,
			Measure:   measureLabels[metricsSlot(req)],
			Query:     int64(req.Query),
			K:         req.Opt.K,
			Unified:   req.Unified,
			Outcome:   "hit",
			LatencyUS: elapsed.Microseconds(),
			Epoch:     epoch,
		})
	}
}

// recordShed accounts one refused admission: an error against the
// availability objective and a trace-less flight record, never a served
// count.
func (p *Pool) recordShed(req Request, start time.Time, traceID string) {
	p.met.shed.Add(1)
	elapsed := time.Since(start)
	if p.slo != nil {
		p.slo.Record(elapsed, false)
	}
	if p.rec != nil {
		p.rec.Record(&obs.FlightRecord{
			ID:        req.ID,
			TraceID:   traceID,
			Start:     start,
			Measure:   measureLabels[metricsSlot(req)],
			Query:     int64(req.Query),
			K:         req.Opt.K,
			Unified:   req.Unified,
			Outcome:   "shed",
			LatencyUS: elapsed.Microseconds(),
		})
	}
}

// interruptedZero wraps a context error for a query that never started.
func interruptedZero(ctxErr error) error {
	cause := core.ErrCanceled
	if errors.Is(ctxErr, context.DeadlineExceeded) {
		cause = core.ErrDeadline
	}
	return &core.Interrupted{Cause: cause}
}

func (p *Pool) worker(g graph.Graph) {
	defer p.wg.Done()
	// One warm engine workspace per worker: consecutive queries on this
	// worker reuse all engine state (reset per query, never shared). The
	// trace sampler is likewise per-worker — run() resets it per query, so
	// its buffer never crosses workers.
	ws := core.NewWorkspace()
	var sampler *obs.TraceSampler
	if p.rec != nil {
		if tp := p.rec.TracePoints(); tp > 0 {
			sampler = obs.NewTraceSampler(tp)
		}
	}
	for {
		select {
		case <-p.done:
			return
		case j := <-p.jobs:
			p.run(g, ws, j, sampler)
		}
	}
}

// multiTracer fans iteration records out to every attached core.Tracer —
// the caller's tracer, the flight recorder's sampler, and the span bridge's
// phase accumulator — so recording a query never hides its trajectory from
// the user who asked for it.
type multiTracer []core.Tracer

func (m multiTracer) ObserveIteration(it core.IterStats) {
	for _, t := range m {
		t.ObserveIteration(it)
	}
}

// phaseAccum is the core.Tracer bridge between the engine's per-iteration
// IterStats hook and the span model: it sums the per-phase wall times the
// engines already measure, and run() synthesizes one aggregate span per
// solver phase from the totals. The engines themselves are untouched — the
// hook observes the schedule, it never alters it.
type phaseAccum struct {
	iters                        int64
	expandNS, solveNS, certifyNS int64

	// Kernel attribution, aggregated the way each statistic is reported per
	// solve call: rounds and float32 sweeps accumulate, blocks and workers
	// are per-call peaks (the interesting value is the widest sweep, not a
	// sum of per-iteration partition counts).
	kernel        string
	kernelRounds  int64
	kernelF32     int64
	kernelBlocks  int64
	kernelWorkers int64
}

func (a *phaseAccum) ObserveIteration(it core.IterStats) {
	a.iters++
	a.expandNS += it.ExpandNS
	a.solveNS += it.SolveNS
	a.certifyNS += it.CertifyNS
	if it.Kernel != "" {
		a.kernel = it.Kernel
		a.kernelRounds += int64(it.KernelRounds)
		a.kernelF32 += int64(it.KernelF32Sweeps)
		a.kernelBlocks = max(a.kernelBlocks, int64(it.KernelBlocks))
		a.kernelWorkers = max(a.kernelWorkers, int64(it.KernelWorkers))
	}
}

// faultObserved is the structural capability of graph views that can report
// page-fault stalls (diskgraph.Reader); declared here so qserve needs no
// diskgraph import.
type faultObserved interface {
	SetFaultObserver(func(time.Duration))
}

func (p *Pool) run(g graph.Graph, ws *core.Workspace, j *job, sampler *obs.TraceSampler) {
	defer j.discard()
	j.queue.End() // admission wait ends when a worker picks the job up
	if j.snap != nil {
		// Live pool: the whole query runs against the snapshot pinned at
		// admission, not whatever is current by the time a worker frees up.
		g = j.snap
	}
	start := time.Now()
	opt := j.req.Opt
	// Claim this worker's own CPU slot for the duration of the query and
	// hand the shared budget to the solver kernel. The claim may come back
	// empty when the pool runs more workers than GOMAXPROCS — the query
	// still runs (a worker never needs a token for itself), it just adds no
	// capacity for anyone's extra sweep goroutines.
	held := p.tokens.TryAcquire(1)
	defer p.tokens.Release(held)
	opt = core.WithKernelTokens(opt, p.tokens)
	// Compose the iteration tracers after the cache decision (Do keys bypass
	// off the user-set tracer, not these) so caching semantics are unchanged
	// when recording or span tracing is on.
	var accum *phaseAccum
	tracers := make(multiTracer, 0, 3)
	if opt.Tracer != nil {
		tracers = append(tracers, opt.Tracer)
	}
	if sampler != nil {
		sampler.Reset()
		tracers = append(tracers, sampler)
	}
	exec := j.trace.StartSpan(j.parent, "qserve.execute",
		trace.Str("measure", measureLabels[metricsSlot(j.req)]),
		trace.Int("query", int64(j.req.Query)),
		trace.Int("k", int64(j.req.Opt.K)),
		trace.Bool("unified", j.req.Unified),
		trace.Int("epoch", int64(j.epoch)))
	var faults, faultNS int64
	if j.trace != nil {
		if j.recert {
			exec.SetAttrs(trace.Bool("recert", true))
		}
		accum = &phaseAccum{}
		tracers = append(tracers, accum)
		if fo, ok := g.(faultObserved); ok {
			// Attribute cold-path disk stalls to this query's trace. The
			// worker owns this view exclusively, and the observer is cleared
			// below before the job completes.
			fo.SetFaultObserver(func(d time.Duration) {
				faults++
				faultNS += int64(d)
			})
		}
	}
	switch len(tracers) {
	case 0:
	case 1:
		opt.Tracer = tracers[0]
	default:
		opt.Tracer = tracers
	}
	var (
		resp = &Response{Epoch: j.epoch}
		err  error
	)
	if p.serialMu != nil {
		p.serialMu.Lock()
	}
	if j.req.Unified {
		resp.Unified, err = ws.Unified(j.ctx, g, j.req.Query, opt)
	} else {
		resp.TopK, err = ws.TopK(j.ctx, g, j.req.Query, opt)
	}
	if p.serialMu != nil {
		p.serialMu.Unlock()
	}
	if j.trace != nil {
		if fo, ok := g.(faultObserved); ok {
			fo.SetFaultObserver(nil)
		}
	}
	elapsed := time.Since(start)
	p.met.served.Add(1)
	p.met.observe(metricsSlot(j.req), elapsed, j.req.ID, j.traceID)
	status := "ok"
	var iters, visited, sweeps int
	var exact bool
	certified := true
	var partialTopK []measure.Ranked
	if err != nil {
		status = "failed"
		var in *core.Interrupted
		if errors.As(err, &in) {
			p.met.interrupted.Add(1)
			iters, visited, sweeps = in.Iterations, in.Visited, in.Sweeps
			// Surface the in-flight top-k for the flight record: what the
			// query had when the context fired (PHP family for unified).
			if in.Partial != nil {
				partialTopK = in.Partial.TopK
			} else if in.PartialUnified != nil {
				partialTopK = in.PartialUnified.PHPFamily
			}
			if errors.Is(err, core.ErrDeadline) {
				p.met.deadline.Add(1)
				status = "deadline"
			} else {
				p.met.canceled.Add(1)
				status = "canceled"
			}
		} else {
			p.met.failed.Add(1)
		}
	} else {
		p.met.ok.Add(1)
		if j.recert {
			p.met.recertHits.Add(1)
		}
		if j.req.Unified {
			iters, visited, sweeps = resp.Unified.Iterations, resp.Unified.Visited, resp.Unified.Sweeps
			exact = resp.Unified.Exact
			certified = resp.Unified.PHPCert.Certified && resp.Unified.RWRCert.Certified
		} else {
			iters, visited, sweeps = resp.TopK.Iterations, resp.TopK.Visited, resp.TopK.Sweeps
			exact = resp.TopK.Exact
			certified = resp.TopK.Certification.Certified
		}
		if opt.Mode == core.ModeAnytime && !certified {
			p.met.anytimePartial.Add(1)
		}
	}
	p.met.addWork(iters, visited, sweeps)
	if j.trace != nil {
		// Close out the execute span: outcome, work counters, then the
		// synthesized per-phase children. The engines report per-phase wall
		// times through IterStats; the totals become contiguous aggregate
		// spans laid end to end from the execution start — real durations,
		// synthetic placement.
		exec.SetAttrs(trace.Str("outcome", status),
			trace.Int("iterations", int64(iters)),
			trace.Int("visited", int64(visited)),
			trace.Int("sweeps", int64(sweeps)))
		if err != nil && status == "failed" {
			exec.SetError(err.Error())
		}
		if accum != nil && accum.kernel != "" {
			exec.SetAttrs(trace.Str("kernel", accum.kernel),
				trace.Int("kernel_rounds", accum.kernelRounds),
				trace.Int("kernel_f32_sweeps", accum.kernelF32),
				trace.Int("kernel_blocks", accum.kernelBlocks),
				trace.Int("kernel_workers", accum.kernelWorkers))
		}
		if accum != nil && accum.iters > 0 {
			t0 := start
			for _, ph := range [...]struct {
				name string
				ns   int64
			}{
				{"solver.expand", accum.expandNS},
				{"solver.solve", accum.solveNS},
				{"solver.certify", accum.certifyNS},
			} {
				j.trace.AddSpan(exec.ID(), ph.name, t0, time.Duration(ph.ns),
					trace.Int("iterations", accum.iters), trace.Bool("aggregate", true))
				t0 = t0.Add(time.Duration(ph.ns))
			}
		}
		if faults > 0 {
			j.trace.AddSpan(exec.ID(), "disk.pagefault", start, time.Duration(faultNS),
				trace.Int("faults", faults), trace.Bool("aggregate", true))
		}
		exec.End()
		// Anything the slow-query log would promote, the trace store keeps
		// too — the two planes must agree on what "the slow query" is.
		if p.rec != nil && p.rec.IsSlow(elapsed, visited) {
			j.trace.Promote("slow-query")
		}
	}
	// Cancellation is client-initiated and says nothing about the server's
	// objectives; every other outcome feeds the SLO windows.
	if p.slo != nil && status != "canceled" {
		p.slo.Record(elapsed, status == "ok")
	}
	if p.rec != nil {
		rec := &obs.FlightRecord{
			ID:         j.req.ID,
			TraceID:    j.traceID,
			Start:      start,
			Measure:    measureLabels[metricsSlot(j.req)],
			Query:      int64(j.req.Query),
			K:          j.req.Opt.K,
			Unified:    j.req.Unified,
			Outcome:    status,
			LatencyUS:  elapsed.Microseconds(),
			Iterations: iters,
			Visited:    visited,
			Sweeps:     sweeps,
			Exact:      exact,
			Epoch:      j.epoch,
		}
		rec.PartialTopK = partialTopK
		if sampler != nil {
			rec.Trace = sampler.Snapshot()
			rec.TraceTotal = sampler.Total()
		}
		p.rec.Record(rec)
	}
	if p.cfg.Logger != nil {
		p.cfg.Logger.Debug("query executed",
			"query", j.req.Query, "measure", measureLabels[metricsSlot(j.req)],
			"k", j.req.Opt.K, "latency", elapsed, "outcome", status)
	}
	if err != nil {
		j.out <- outcome{err: err}
		return
	}
	if p.cache != nil && j.cached && (opt.Mode != core.ModeAnytime || certified) {
		// Results are immutable once returned; the cache shares them. An
		// uncertified anytime partial is never cached: its content depends
		// on when the deadline happened to fire, so replaying it to later
		// callers (who may have looser deadlines) would serve interrupted
		// junk as if it were the query's answer.
		if p.live != nil {
			fp, visitedSet, guard, guarded := footprintOf(j.req, resp)
			p.cache.putLive(j.key, resp, fp, visitedSet, guard, guarded)
		} else {
			p.cache.put(j.key, resp)
		}
	}
	j.out <- outcome{resp: resp}
}

// footprintOf assembles the cache-entry invalidation state from a completed
// response: the sorted union of visited and degree-probed nodes, the
// visit-order set (the warm-start seed), and the RWR guard rule inputs. A
// unified query always certifies an RWR ranking, so it is guarded; a
// single-measure query is guarded only under measure.RWR.
func footprintOf(req Request, resp *Response) (fp, visited []graph.NodeID, guard float64, guarded bool) {
	var probed []graph.NodeID
	if resp.Unified != nil {
		visited, probed, guard = resp.Unified.VisitedNodes, resp.Unified.ProbedNodes, resp.Unified.GuardDegree
		guarded = true
	} else if resp.TopK != nil {
		visited, probed, guard = resp.TopK.VisitedNodes, resp.TopK.ProbedNodes, resp.TopK.GuardDegree
		guarded = req.Opt.Measure == measure.RWR
	}
	fp = make([]graph.NodeID, 0, len(visited)+len(probed))
	fp = append(append(fp, visited...), probed...)
	sort.Slice(fp, func(i, j int) bool { return fp[i] < fp[j] })
	return fp, visited, guard, guarded
}

// Metrics returns a counters snapshot; see the Metrics type.
func (p *Pool) Metrics() Metrics {
	m := p.met.snapshot()
	m.Workers = p.cfg.Workers
	m.QueueCap = p.cfg.QueueDepth
	m.QueueDepth = len(p.jobs)
	m.Epoch = p.epoch.Load()
	if p.cache != nil {
		m.CacheHits, m.CacheMisses, m.CacheEvictions, m.CacheEntries = p.cache.counters()
		m.CacheCapacity = p.cache.max
	}
	if p.live != nil {
		ls := p.live.Stats()
		m.Epoch = ls.Epoch
		m.SnapshotsAlive = ls.SnapshotsAlive
		m.SnapshotsTotal = ls.SnapshotsTotal
		m.RowsCoWed = ls.RowsCoWed
		m.OpsApplied = ls.OpsApplied
	}
	return m
}

// Live reports whether the pool serves a livegraph.LiveGraph (Mutate works).
func (p *Pool) Live() bool { return p.live != nil }
