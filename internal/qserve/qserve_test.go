package qserve

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"flos/internal/core"
	"flos/internal/diskgraph"
	"flos/internal/gen"
	"flos/internal/graph"
	"flos/internal/measure"
)

func buildStore(t *testing.T, g *graph.MemGraph, pageSize int, cacheBytes int64) *diskgraph.Store {
	t.Helper()
	path := filepath.Join(t.TempDir(), "graph.flos")
	if err := diskgraph.Create(path, g, pageSize); err != nil {
		t.Fatal(err)
	}
	s, err := diskgraph.Open(path, cacheBytes)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestConcurrentDiskStressMatchesSerial fires 64 concurrent mixed-measure
// queries at one disk-resident store through a multi-worker pool and
// verifies every answer is byte-identical to the single-threaded reference
// on the in-memory graph. Run under -race, this is the subsystem's central
// exactness-under-concurrency guarantee: the sharded page cache, the
// per-worker readers, and the deterministic engine must agree with the
// serial path bit for bit.
func TestConcurrentDiskStressMatchesSerial(t *testing.T) {
	g, err := gen.RMAT(5000, 25000, gen.DefaultRMAT(), 3)
	if err != nil {
		t.Fatal(err)
	}
	store := buildStore(t, g, 4096, 64<<10) // 64 KiB budget: heavy eviction
	lc := graph.LargestComponentNodes(g)
	kinds := []measure.Kind{measure.PHP, measure.EI, measure.DHT, measure.THT, measure.RWR}

	const n = 64
	reqs := make([]Request, n)
	want := make([]*core.Result, n)
	for i := range reqs {
		reqs[i] = Request{
			Query: lc[(i*997)%len(lc)],
			Opt:   core.DefaultOptions(kinds[i%len(kinds)], 10),
		}
		res, err := core.TopK(g, reqs[i].Query, reqs[i].Opt)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}

	pool := New(store, Config{Workers: 8, QueueDepth: n, CacheEntries: -1})
	defer pool.Close()

	var wg sync.WaitGroup
	errs := make([]error, n)
	got := make([]*Response, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = pool.Do(context.Background(), reqs[i])
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(got[i].TopK.TopK, want[i].TopK) {
			t.Errorf("query %d (%v q=%d): concurrent %v != serial %v",
				i, reqs[i].Opt.Measure, reqs[i].Query, got[i].TopK.TopK, want[i].TopK)
		}
		if got[i].TopK.Visited != want[i].Visited {
			t.Errorf("query %d: visited %d != serial %d", i, got[i].TopK.Visited, want[i].Visited)
		}
	}
	st := store.CacheStats()
	t.Logf("page cache after stress: %d hits, %d faults, %d deduped, %d shards",
		st.Hits, st.Misses, st.FaultsDeduped, st.Shards)
}

// TestCancellationPrompt proves TopKCtx abandons work as soon as the
// context is dead: with an already-expired deadline the query returns in
// far less than the time a full search would take, with the typed sentinel
// and partial counters.
func TestCancellationPrompt(t *testing.T) {
	g, err := gen.Community(20000, 80000, gen.DefaultCommunityParams(), 5)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	start := time.Now()
	_, err = core.TopKCtx(ctx, g, 1, core.DefaultOptions(measure.RWR, 50))
	elapsed := time.Since(start)
	if !errors.Is(err, core.ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	var in *core.Interrupted
	if !errors.As(err, &in) {
		t.Fatalf("err %T does not carry *core.Interrupted", err)
	}
	if in.Visited < 1 {
		t.Errorf("interrupted with no work recorded: %+v", in)
	}
	if elapsed > 200*time.Millisecond {
		t.Errorf("expired-context query took %s, want prompt return", elapsed)
	}

	// Same contract through the pool, via its Timeout knob.
	pool := New(g, Config{Workers: 1, Timeout: time.Nanosecond})
	defer pool.Close()
	if _, err := pool.Do(context.Background(), Request{Query: 1, Opt: core.DefaultOptions(measure.PHP, 10)}); !errors.Is(err, core.ErrDeadline) {
		t.Fatalf("pool err = %v, want ErrDeadline", err)
	}
	if m := pool.Metrics(); m.Interrupted != 1 {
		t.Errorf("Interrupted = %d, want 1", m.Interrupted)
	}

	// Plain cancellation maps to ErrCanceled.
	cctx, ccancel := context.WithCancel(context.Background())
	ccancel()
	if _, err := core.TopKCtx(cctx, g, 1, core.DefaultOptions(measure.THT, 10)); !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if _, err := core.UnifiedTopKCtx(cctx, g, 1, core.DefaultOptions(measure.PHP, 10)); !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("unified err = %v, want ErrCanceled", err)
	}
}

// TestResultCacheEpochInvalidation checks the cache contract: identical
// requests hit, answers are identical to the cold run, and BumpEpoch
// invalidates everything at once.
func TestResultCacheEpochInvalidation(t *testing.T) {
	g, err := gen.Community(2000, 5400, gen.DefaultCommunityParams(), 3)
	if err != nil {
		t.Fatal(err)
	}
	pool := New(g, Config{Workers: 2, CacheEntries: 16})
	defer pool.Close()
	req := Request{Query: 100, Opt: core.DefaultOptions(measure.RWR, 5)}

	cold, err := pool.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheHit {
		t.Fatal("first query reported a cache hit")
	}
	warm, err := pool.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit {
		t.Fatal("second identical query missed the cache")
	}
	if !reflect.DeepEqual(warm.TopK.TopK, cold.TopK.TopK) {
		t.Fatalf("cached answer differs: %v vs %v", warm.TopK.TopK, cold.TopK.TopK)
	}

	// A different k is a different key.
	other := req
	other.Opt.K = 7
	if resp, err := pool.Do(context.Background(), other); err != nil || resp.CacheHit {
		t.Fatalf("k=7 variant: err=%v hit=%v, want cold miss", err, resp.CacheHit)
	}

	pool.BumpEpoch()
	fresh, err := pool.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.CacheHit {
		t.Fatal("cache hit across an epoch bump")
	}
	m := pool.Metrics()
	if m.CacheHits != 1 || m.Epoch != 1 {
		t.Errorf("metrics = %+v, want 1 hit at epoch 1", m)
	}

	// Unified requests cache under their own key.
	ureq := Request{Query: 100, Opt: core.DefaultOptions(measure.PHP, 5), Unified: true}
	if resp, err := pool.Do(context.Background(), ureq); err != nil || resp.CacheHit {
		t.Fatalf("unified cold: err=%v hit=%v", err, resp.CacheHit)
	}
	if resp, err := pool.Do(context.Background(), ureq); err != nil || !resp.CacheHit {
		t.Fatalf("unified warm: err=%v hit=%v, want hit", err, resp.CacheHit)
	}
}

// gateGraph blocks every Neighbors call until the gate opens, signalling
// entry — a deterministic way to hold a worker busy.
type gateGraph struct {
	base    *graph.MemGraph
	gate    chan struct{}
	entered chan struct{}
}

func (g *gateGraph) NumNodes() int                        { return g.base.NumNodes() }
func (g *gateGraph) NumEdges() int64                      { return g.base.NumEdges() }
func (g *gateGraph) Degree(v graph.NodeID) float64        { return g.base.Degree(v) }
func (g *gateGraph) TopDegrees(k int) []graph.DegreeEntry { return g.base.TopDegrees(k) }
func (g *gateGraph) Neighbors(v graph.NodeID) ([]graph.NodeID, []float64) {
	select {
	case g.entered <- struct{}{}:
	default:
	}
	<-g.gate
	return g.base.Neighbors(v)
}

// TestAdmissionShedding fills the one-worker pool and its one-slot queue,
// then verifies the next request is shed immediately with ErrOverloaded and
// counted, while the admitted requests still complete once unblocked.
func TestAdmissionShedding(t *testing.T) {
	b := graph.NewBuilder(3)
	if err := b.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 2, 1); err != nil {
		t.Fatal(err)
	}
	mg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	gg := &gateGraph{base: mg, gate: make(chan struct{}), entered: make(chan struct{}, 16)}
	pool := New(gg, Config{Workers: 1, QueueDepth: 1, CacheEntries: -1})
	defer pool.Close()

	req := Request{Query: 0, Opt: core.DefaultOptions(measure.PHP, 1)}
	results := make(chan error, 2)
	go func() {
		_, err := pool.Do(context.Background(), req)
		results <- err
	}()
	<-gg.entered // worker is now blocked inside the first query

	go func() {
		_, err := pool.Do(context.Background(), req)
		results <- err
	}()
	// The queued job occupies the single slot; poll until it is visible.
	deadline := time.Now().Add(2 * time.Second)
	for pool.QueueDepth() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("second request never reached the queue")
		}
		time.Sleep(time.Millisecond)
	}

	if _, err := pool.Do(context.Background(), req); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third request: err = %v, want ErrOverloaded", err)
	}
	if m := pool.Metrics(); m.Shed != 1 {
		t.Errorf("Shed = %d, want 1", m.Shed)
	}

	close(gg.gate)
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Fatalf("admitted request %d failed: %v", i, err)
		}
	}
}

// TestClosedPool verifies Do fails fast after Close.
func TestClosedPool(t *testing.T) {
	g, err := gen.Community(500, 1500, gen.DefaultCommunityParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	pool := New(g, Config{Workers: 1})
	pool.Close()
	if _, err := pool.Do(context.Background(), Request{Query: 0, Opt: core.DefaultOptions(measure.PHP, 3)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

// TestMetricsHistogramsAndOutcomes exercises the histogram-based snapshot:
// latency percentiles are populated, per-measure histograms carry the right
// labels, outcome counters split interrupted queries by cause, and the work
// totals accumulate engine counters.
func TestMetricsHistogramsAndOutcomes(t *testing.T) {
	g, err := gen.Community(2000, 5400, gen.DefaultCommunityParams(), 3)
	if err != nil {
		t.Fatal(err)
	}
	pool := New(g, Config{Workers: 2, CacheEntries: -1})
	defer pool.Close()

	for _, kind := range []measure.Kind{measure.PHP, measure.RWR} {
		for i := 0; i < 3; i++ {
			if _, err := pool.Do(context.Background(), Request{Query: graph.NodeID(100 + i), Opt: core.DefaultOptions(kind, 5)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := pool.Do(context.Background(), Request{Query: 50, Opt: core.DefaultOptions(measure.PHP, 5), Unified: true}); err != nil {
		t.Fatal(err)
	}

	m := pool.Metrics()
	if m.Served != 7 {
		t.Fatalf("served = %d, want 7", m.Served)
	}
	if m.P50Micros <= 0 || m.P99Micros < m.P50Micros {
		t.Errorf("percentiles p50=%d p99=%d", m.P50Micros, m.P99Micros)
	}
	if m.Latency.Count != 7 {
		t.Errorf("overall histogram count = %d, want 7", m.Latency.Count)
	}
	for _, label := range []string{"php", "rwr", "unified"} {
		if m.LatencyByMeasure[label].Count == 0 {
			t.Errorf("no observations under measure label %q: %v", label, m.LatencyByMeasure)
		}
	}
	if _, ok := m.LatencyByMeasure["tht"]; ok {
		t.Errorf("unused measure label present: %v", m.LatencyByMeasure)
	}
	if m.VisitedTotal <= 0 || m.IterationsTotal <= 0 || m.SweepsTotal <= 0 {
		t.Errorf("work totals not accumulated: %+v", m)
	}

	// A pool-deadline query lands in the deadline outcome bucket.
	dpool := New(g, Config{Workers: 1, Timeout: time.Nanosecond, CacheEntries: -1})
	defer dpool.Close()
	if _, err := dpool.Do(context.Background(), Request{Query: 1, Opt: core.DefaultOptions(measure.PHP, 5)}); !errors.Is(err, core.ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	dm := dpool.Metrics()
	if dm.Deadline != 1 || dm.Interrupted != 1 || dm.Canceled != 0 {
		t.Errorf("outcomes = deadline %d canceled %d interrupted %d, want 1/0/1",
			dm.Deadline, dm.Canceled, dm.Interrupted)
	}
}

// TestTracerBypassesCache: requests carrying an iteration tracer must not
// be answered from (or populate) the result cache — the caller wants a real
// execution's trajectory.
func TestTracerBypassesCache(t *testing.T) {
	g, err := gen.Community(2000, 5400, gen.DefaultCommunityParams(), 3)
	if err != nil {
		t.Fatal(err)
	}
	pool := New(g, Config{Workers: 1, CacheEntries: 64})
	defer pool.Close()

	req := Request{Query: 100, Opt: core.DefaultOptions(measure.RWR, 5)}
	if _, err := pool.Do(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	traced := req
	tc := &core.TraceCollector{}
	traced.Opt.Tracer = tc
	resp, err := pool.Do(context.Background(), traced)
	if err != nil {
		t.Fatal(err)
	}
	if resp.CacheHit {
		t.Fatal("traced request served from cache")
	}
	if len(tc.Iters) == 0 {
		t.Fatal("tracer saw no iterations")
	}
	if !tc.Iters[len(tc.Iters)-1].Certified {
		t.Fatalf("final trace entry not certified: %+v", tc.Iters[len(tc.Iters)-1])
	}
}
