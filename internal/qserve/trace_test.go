package qserve

import (
	"context"
	"math"
	"testing"
	"time"

	"flos/internal/core"
	"flos/internal/gen"
	"flos/internal/graph"
	"flos/internal/livegraph"
	"flos/internal/measure"
	"flos/internal/obs"
	"flos/internal/obs/trace"
)

// tracedCtx opens a request on tr and returns a context carrying its root
// span, plus a finisher that closes the request.
func tracedCtx(tr *trace.Tracer) (context.Context, *trace.Active, func(status string)) {
	a := tr.StartRequest(trace.TraceParent{})
	root := a.StartSpan(trace.SpanID{}, "GET /topk")
	root.SetKind("server")
	ctx := trace.NewContext(context.Background(), a, root.ID())
	return ctx, a, func(status string) {
		root.End()
		a.Finish(status)
	}
}

// TestTracedQuerySpanTree runs one disk-backed query under an active trace
// and asserts the pool's full span set shows up in the stored tree: cache
// lookup, admission wait, execute with solver-phase children, and (cold
// store) page-fault time.
func TestTracedQuerySpanTree(t *testing.T) {
	g, err := gen.Community(2000, 5400, gen.DefaultCommunityParams(), 3)
	if err != nil {
		t.Fatal(err)
	}
	store := buildStore(t, g, 512, 16<<10) // tiny cache: guaranteed faults
	p := New(store, Config{Workers: 1, CacheEntries: 16})
	defer p.Close()

	tr := trace.New(trace.Config{HeadRate: 1})
	ctx, a, finish := tracedCtx(tr)
	lc := graph.LargestComponentNodes(g)
	req := Request{Query: lc[0], Opt: core.DefaultOptions(measure.PHP, 10)}
	if _, err := p.Do(ctx, req); err != nil {
		t.Fatal(err)
	}
	finish("ok")

	kept := tr.Get(a.TraceIDString())
	if kept == nil {
		t.Fatal("trace not retained at HeadRate 1")
	}
	names := map[string]int{}
	for _, s := range kept.Spans {
		names[s.Name]++
	}
	for _, want := range []string{
		"GET /topk", "qserve.cache.lookup", "qserve.queue.wait", "qserve.execute",
		"solver.expand", "solver.solve", "solver.certify", "disk.pagefault",
	} {
		if names[want] == 0 {
			t.Errorf("span %q missing from trace (have %v)", want, names)
		}
	}

	// The tree nests: root → {lookup, wait, execute → solver phases}.
	roots := kept.Tree()
	if len(roots) != 1 {
		t.Fatalf("tree has %d roots, want 1", len(roots))
	}
	var exec *trace.SpanNode
	for _, c := range roots[0].Children {
		if c.Span.Name == "qserve.execute" {
			exec = c
		}
	}
	if exec == nil {
		t.Fatal("qserve.execute not a child of the boundary span")
	}
	childNames := map[string]bool{}
	for _, c := range exec.Children {
		childNames[c.Span.Name] = true
	}
	for _, want := range []string{"solver.expand", "solver.solve", "solver.certify", "disk.pagefault"} {
		if !childNames[want] {
			t.Errorf("execute span missing child %q (have %v)", want, childNames)
		}
	}

	// A second identical query hits the cache; its trace records the hit.
	ctx2, a2, finish2 := tracedCtx(tr)
	resp, err := p.Do(ctx2, req)
	if err != nil || !resp.CacheHit {
		t.Fatalf("second query: err %v, hit %v", err, resp != nil && resp.CacheHit)
	}
	finish2("ok")
	kept2 := tr.Get(a2.TraceIDString())
	if kept2 == nil {
		t.Fatal("hit trace not retained")
	}
	foundHit := false
	for _, s := range kept2.Spans {
		if s.Name != "qserve.cache.lookup" {
			continue
		}
		for _, at := range s.Attrs {
			if at.Key == "hit" && at.Bool {
				foundHit = true
			}
		}
	}
	if !foundHit {
		t.Error("cache-hit trace has no hit=true lookup span")
	}
}

// TestTracingByteIdentical runs the same mixed-measure workload through a
// traced pool and an untraced pool and requires bit-for-bit identical
// results and work counters — the span layer observes the schedule, it must
// never perturb it.
func TestTracingByteIdentical(t *testing.T) {
	g, err := gen.Community(3000, 9000, gen.DefaultCommunityParams(), 7)
	if err != nil {
		t.Fatal(err)
	}
	lc := graph.LargestComponentNodes(g)
	kinds := []measure.Kind{measure.PHP, measure.EI, measure.DHT, measure.THT, measure.RWR}

	plain := New(g, Config{Workers: 2, CacheEntries: -1})
	defer plain.Close()
	traced := New(g, Config{Workers: 2, CacheEntries: -1})
	defer traced.Close()
	tr := trace.New(trace.Config{HeadRate: 1, Ring: 64})

	for i := 0; i < 25; i++ {
		req := Request{
			Query:   lc[(i*131)%len(lc)],
			Opt:     core.DefaultOptions(kinds[i%len(kinds)], 10),
			Unified: i%5 == 4,
		}
		want, err := plain.Do(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		ctx, a, finish := tracedCtx(tr)
		got, err := traced.Do(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		finish("ok")
		if tr.Get(a.TraceIDString()) == nil {
			t.Fatal("traced run did not retain its trace")
		}
		compareResponses(t, i, want, got)
	}
}

func compareResponses(t *testing.T, i int, want, got *Response) {
	t.Helper()
	if (want.TopK == nil) != (got.TopK == nil) || (want.Unified == nil) != (got.Unified == nil) {
		t.Fatalf("query %d: result shape mismatch", i)
	}
	check := func(w, g *core.Result) {
		if len(w.TopK) != len(g.TopK) {
			t.Fatalf("query %d: topk size %d vs %d", i, len(w.TopK), len(g.TopK))
		}
		for j := range w.TopK {
			if w.TopK[j].Node != g.TopK[j].Node ||
				math.Float64bits(w.TopK[j].Score) != math.Float64bits(g.TopK[j].Score) {
				t.Fatalf("query %d rank %d: %v vs %v (traced run diverged)", i, j, w.TopK[j], g.TopK[j])
			}
		}
		if w.Iterations != g.Iterations || w.Visited != g.Visited || w.Sweeps != g.Sweeps {
			t.Fatalf("query %d: work counters (%d,%d,%d) vs (%d,%d,%d)",
				i, w.Iterations, w.Visited, w.Sweeps, g.Iterations, g.Visited, g.Sweeps)
		}
	}
	if want.TopK != nil {
		check(want.TopK, got.TopK)
	}
	if want.Unified != nil {
		check(&core.Result{TopK: want.Unified.PHPFamily, Iterations: want.Unified.Iterations,
			Visited: want.Unified.Visited, Sweeps: want.Unified.Sweeps},
			&core.Result{TopK: got.Unified.PHPFamily, Iterations: got.Unified.Iterations,
				Visited: got.Unified.Visited, Sweeps: got.Unified.Sweeps})
		for j := range want.Unified.RWR {
			if math.Float64bits(want.Unified.RWR[j].Score) != math.Float64bits(got.Unified.RWR[j].Score) {
				t.Fatalf("query %d: unified RWR rank %d diverged", i, j)
			}
		}
	}
}

// TestTracedSlowQueryJoins is the acceptance contract end to end at the pool
// level: with a 1ns slow threshold and 0% head sampling, an executed query's
// trace is tail-promoted and its trace ID appears in the slow-query log, the
// flight record, and a histogram exemplar.
func TestTracedSlowQueryJoins(t *testing.T) {
	g, err := gen.Community(2000, 5400, gen.DefaultCommunityParams(), 3)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewFlightRecorder(obs.RecorderConfig{Size: 64, SlowLatency: time.Nanosecond})
	p := New(g, Config{Workers: 1, CacheEntries: -1, Recorder: rec})
	defer p.Close()
	tr := trace.New(trace.Config{HeadRate: 0, SlowLatency: time.Nanosecond})

	ctx, a, finish := tracedCtx(tr)
	lc := graph.LargestComponentNodes(g)
	req := Request{ID: "req-join", Query: lc[0], Opt: core.DefaultOptions(measure.RWR, 10)}
	if _, err := p.Do(ctx, req); err != nil {
		t.Fatal(err)
	}
	finish("ok")

	traceID := a.TraceIDString()
	kept := tr.Get(traceID)
	if kept == nil {
		t.Fatal("slow query's trace dropped at HeadRate 0 — tail promotion failed")
	}
	if kept.Sampled == "head" {
		t.Fatalf("Sampled = %q, want a tail reason", kept.Sampled)
	}

	slow := rec.Slow()
	if len(slow) == 0 || slow[0].TraceID != traceID {
		t.Fatalf("slow log trace ID = %v, want %s", slow, traceID)
	}
	last := rec.Last(1)
	if len(last) == 0 || last[0].TraceID != traceID {
		t.Fatal("flight record missing trace ID")
	}
	found := false
	for _, ex := range p.Metrics().Latency.Exemplars {
		if ex != nil && ex.TraceID == traceID && ex.ID == "req-join" {
			found = true
		}
	}
	if !found {
		t.Fatal("no histogram exemplar carries the trace ID")
	}
}

// TestMutateCtxSpans verifies MutateCtx records the apply and invalidation
// decisions as spans of the mutating request.
func TestMutateCtxSpans(t *testing.T) {
	g, err := gen.Community(1000, 3000, gen.DefaultCommunityParams(), 2)
	if err != nil {
		t.Fatal(err)
	}
	lg := livegraph.New(g)
	p := New(lg, Config{Workers: 1, CacheEntries: 16})
	defer p.Close()

	// Populate the cache so the invalidation walk has entries to judge.
	lc := graph.LargestComponentNodes(g)
	for i := 0; i < 4; i++ {
		if _, err := p.Do(context.Background(), Request{Query: lc[i], Opt: core.DefaultOptions(measure.PHP, 5)}); err != nil {
			t.Fatal(err)
		}
	}

	tr := trace.New(trace.Config{HeadRate: 1})
	ctx, a, finish := tracedCtx(tr)
	// Pick an endpoint pair with no existing edge (OpAdd rejects duplicates).
	u, v := lc[0], graph.NodeID(0)
	nbrs := map[graph.NodeID]bool{u: true}
	ns, _ := g.Neighbors(u)
	for _, n := range ns {
		nbrs[n] = true
	}
	for _, cand := range lc {
		if !nbrs[cand] {
			v = cand
			break
		}
	}
	if _, err := p.MutateCtx(ctx, []livegraph.EdgeOp{{Op: livegraph.OpAdd, U: u, V: v, W: 1}}); err != nil {
		t.Fatal(err)
	}
	finish("ok")

	kept := tr.Get(a.TraceIDString())
	if kept == nil {
		t.Fatal("mutate trace dropped")
	}
	var gotApply, gotInval bool
	for _, s := range kept.Spans {
		switch s.Name {
		case "livegraph.apply":
			gotApply = true
			var ops, epoch bool
			for _, at := range s.Attrs {
				ops = ops || at.Key == "ops"
				epoch = epoch || at.Key == "epoch"
			}
			if !ops || !epoch {
				t.Errorf("apply span attrs incomplete: %+v", s.Attrs)
			}
		case "qserve.cache.invalidate":
			gotInval = true
		}
	}
	if !gotApply || !gotInval {
		t.Fatalf("mutate spans: apply %v, invalidate %v (spans %v)", gotApply, gotInval, kept.Spans)
	}
}
