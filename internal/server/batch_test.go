package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"strings"
	"testing"
)

func postJSON(t *testing.T, url, body string, out interface{}) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(buf.Bytes(), out); err != nil {
			t.Fatalf("decoding %q: %v", buf.String(), err)
		}
	}
	return resp.StatusCode
}

// TestTopKBatchHappyPath: a batch answer must agree slot by slot with the
// single-query endpoint.
func TestTopKBatchHappyPath(t *testing.T) {
	ts := newTestServer(t, false)
	var body batchBody
	code := postJSON(t, ts.URL+"/topk/batch",
		`{"queries":[1,500,1999],"measure":"rwr","k":5}`, &body)
	if code != http.StatusOK {
		t.Fatalf("status %d, want 200", code)
	}
	if body.Count != 3 || body.Errors != 0 || len(body.Results) != 3 {
		t.Fatalf("count=%d errors=%d len=%d, want 3/0/3", body.Count, body.Errors, len(body.Results))
	}
	for i, q := range []int{1, 500, 1999} {
		slot := body.Results[i]
		if int(slot.Query) != q || slot.Error != "" || !slot.Exact || len(slot.Results) != 5 {
			t.Fatalf("slot %d: %+v", i, slot)
		}
		var single topKBody
		if code := getJSON(t, fmt.Sprintf("%s/topk?q=%d&measure=rwr&k=5", ts.URL, q), &single); code != http.StatusOK {
			t.Fatalf("single query %d: status %d", q, code)
		}
		if !reflect.DeepEqual(slot.Results, single.Results) {
			t.Fatalf("q=%d: batch ranking %v != single ranking %v", q, slot.Results, single.Results)
		}
	}
}

// TestTopKBatchPerQueryError: an out-of-range node fails its own slot with
// a 200 response; its neighbors still get answers.
func TestTopKBatchPerQueryError(t *testing.T) {
	ts := newTestServer(t, false)
	var body batchBody
	code := postJSON(t, ts.URL+"/topk/batch",
		`{"queries":[3,1000000],"measure":"php","k":3}`, &body)
	if code != http.StatusOK {
		t.Fatalf("status %d, want 200", code)
	}
	if body.Errors != 1 {
		t.Fatalf("errors=%d, want 1", body.Errors)
	}
	if body.Results[0].Error != "" || len(body.Results[0].Results) != 3 {
		t.Fatalf("good slot poisoned: %+v", body.Results[0])
	}
	if body.Results[1].Error == "" || len(body.Results[1].Results) != 0 {
		t.Fatalf("bad slot did not fail: %+v", body.Results[1])
	}
}

// TestTopKBatchCached: repeating a batch serves the slots from the result
// cache.
func TestTopKBatchCached(t *testing.T) {
	ts := newTestServer(t, false)
	const req = `{"queries":[7,8],"measure":"ei","k":4}`
	var first, second batchBody
	if code := postJSON(t, ts.URL+"/topk/batch", req, &first); code != http.StatusOK {
		t.Fatalf("first: status %d", code)
	}
	if code := postJSON(t, ts.URL+"/topk/batch", req, &second); code != http.StatusOK {
		t.Fatalf("second: status %d", code)
	}
	for i := range second.Results {
		if !second.Results[i].Cached {
			t.Errorf("slot %d not cached on repeat", i)
		}
		if !reflect.DeepEqual(first.Results[i].Results, second.Results[i].Results) {
			t.Errorf("slot %d: cached ranking differs", i)
		}
	}
}

// TestTopKBatchBadRequests: batch-level mistakes are rejected wholesale.
func TestTopKBatchBadRequests(t *testing.T) {
	ts, _ := newTestServerCfg(t, Config{MaxBatch: 4})
	cases := []struct {
		name string
		body string
	}{
		{"bad json", `{"queries":`},
		{"empty queries", `{"queries":[]}`},
		{"over max batch", `{"queries":[1,2,3,4,5]}`},
		{"bad measure", `{"queries":[1],"measure":"nope"}`},
		{"bad k", `{"queries":[1],"k":-2}`},
		{"bad params", `{"queries":[1],"measure":"rwr","c":1.5}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var eb errorBody
			if code := postJSON(t, ts.URL+"/topk/batch", tc.body, &eb); code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (error %q)", code, eb.Error)
			}
			if eb.Error == "" {
				t.Fatal("400 without an error message")
			}
		})
	}

	// Wrong method: GET is not allowed.
	resp, err := http.Get(ts.URL + "/topk/batch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET: status %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != http.MethodPost {
		t.Fatalf("Allow = %q, want POST", allow)
	}
}
