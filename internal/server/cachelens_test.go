package server

import (
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"flos/internal/diskgraph"
	"flos/internal/gen"
	"flos/internal/obs/cachelens"
)

// newDiskLensServer builds a server over a real disk store small enough to
// evict (8 KiB budget over a 512-byte page file), with analytics lenses on
// both the page cache and the result cache — the full cache-analytics plane.
func newDiskLensServer(t *testing.T) (*httptest.Server, *Server, *diskgraph.Store) {
	t.Helper()
	g, err := gen.RMAT(2000, 8000, gen.DefaultRMAT(), 7)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "graph.flos")
	if err := diskgraph.Create(path, g, 512); err != nil {
		t.Fatal(err)
	}
	store, err := diskgraph.Open(path, 8<<10)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	store.AttachLens(cachelens.Config{SampleRate: 1, Seed: 3})

	rl := cachelens.New(cachelens.Config{Capacity: 8, SampleRate: 1, Seed: 5})
	srv := New(store, Config{
		CacheEntries: 8,
		CacheLens:    rl,
		Logger:       slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv, store
}

// TestCacheLensEndpoint drives disk-backed queries and checks the
// /debug/flos/cache payload shape: both planes present, the page-cache
// snapshot carrying a full miss-ratio curve over dense block IDs with real
// eviction traffic, the result cache hashed.
func TestCacheLensEndpoint(t *testing.T) {
	ts, _, _ := newDiskLensServer(t)
	for q := 0; q < 24; q++ {
		if code := getJSON(t, ts.URL+"/topk?q="+strconv.Itoa(q*37)+"&k=5&measure=rwr", nil); code != 200 {
			t.Fatalf("query %d: code %d", q, code)
		}
	}

	var body cacheLensBody
	if code := getJSON(t, ts.URL+"/debug/flos/cache", &body); code != 200 {
		t.Fatalf("debug/flos/cache code %d", code)
	}
	pc, rc := body.PageCache, body.ResultCache
	if pc == nil || rc == nil {
		t.Fatalf("missing planes: page=%v result=%v", pc != nil, rc != nil)
	}
	if pc.Accesses == 0 || pc.Hits == 0 {
		t.Fatalf("page lens saw no traffic: %+v", pc)
	}
	if len(pc.Curve) != len(cachelens.DefaultScales) {
		t.Fatalf("curve has %d points, want %d", len(pc.Curve), len(cachelens.DefaultScales))
	}
	for i := 1; i < len(pc.Curve); i++ {
		if pc.Curve[i].EstHitRatio < pc.Curve[i-1].EstHitRatio {
			t.Fatalf("MRC not monotone: %+v", pc.Curve)
		}
	}
	if !pc.DenseBlocks {
		t.Fatal("page lens must report dense block IDs")
	}
	if pc.Capacity != 16 { // 8 KiB budget / 512-byte pages
		t.Fatalf("page lens capacity %d, want 16", pc.Capacity)
	}
	if pc.Ghost.Evictions == 0 {
		t.Fatal("16-page budget over a bigger file evicted nothing")
	}
	if len(pc.HotBlocks) == 0 {
		t.Fatal("no hot blocks ranked")
	}
	if rc.DenseBlocks {
		t.Fatal("result lens keys are hashed, not dense")
	}
	if rc.Accesses == 0 {
		t.Fatal("result lens saw no lookups")
	}

	// ?n= bounds the heat ranking; a bad n is a structured 400.
	var small cacheLensBody
	if code := getJSON(t, ts.URL+"/debug/flos/cache?n=2", &small); code != 200 {
		t.Fatalf("n=2 code %d", code)
	}
	if len(small.PageCache.HotBlocks) > 2 {
		t.Fatalf("n=2 returned %d hot blocks", len(small.PageCache.HotBlocks))
	}
	if code := getJSON(t, ts.URL+"/debug/flos/cache?n=zero", nil); code != 400 {
		t.Fatalf("bad n: code %d, want 400", code)
	}
}

// TestCacheLensDisabled404 pins the debug-endpoint discipline: with no lens
// attached anywhere the endpoint answers a structured 404, not an empty 200.
func TestCacheLensDisabled404(t *testing.T) {
	ts := newTestServer(t, false)
	var e errorBody
	if code := getJSON(t, ts.URL+"/debug/flos/cache", &e); code != 404 || e.Error == "" {
		t.Fatalf("code %d, err %q; want structured 404", code, e.Error)
	}
}

// TestCacheLensMetrics checks both exposition formats carry the analytics
// plane: the Prometheus gauges for MRC/WSS/ghost under both prefixes, the new
// per-shard eviction and HWM series, and the JSON mirror with the extended
// disk body and cache_analytics section.
func TestCacheLensMetrics(t *testing.T) {
	ts, _, store := newDiskLensServer(t)
	for q := 0; q < 24; q++ {
		if code := getJSON(t, ts.URL+"/topk?q="+strconv.Itoa(q*37)+"&k=5&measure=rwr", nil); code != 200 {
			t.Fatalf("query %d: code %d", q, code)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		`flos_pagecache_mrc_hit_ratio{scale="0.25x"}`,
		`flos_pagecache_mrc_hit_ratio{scale="1x"}`,
		`flos_pagecache_mrc_hit_ratio{scale="4x"}`,
		`flos_pagecache_wss_estimate{window="1m0s"}`,
		`flos_pagecache_wss_estimate{window="10m0s"}`,
		"flos_pagecache_ghost_would_have_hits_total",
		"flos_pagecache_ghost_hit_ratio_at_2x",
		"flos_pagecache_lens_hit_ratio",
		`flos_result_cache_mrc_hit_ratio{scale="2x"}`,
		"flos_result_cache_ghost_evictions_total",
		"flos_result_cache_capacity 8",
		`flos_page_cache_evictions_total{shard="0"}`,
		`flos_page_cache_resident_pages_hwm{shard="0"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	var body metricsBody
	if code := getJSON(t, ts.URL+"/metrics?format=json", &body); code != 200 {
		t.Fatal("metrics json failed")
	}
	if body.Disk == nil {
		t.Fatal("no disk section for a disk-resident graph")
	}
	st := store.CacheStats()
	if body.Disk.Evictions == 0 || body.Disk.Evictions != st.Evictions {
		t.Fatalf("disk evictions %d, store says %d", body.Disk.Evictions, st.Evictions)
	}
	if body.Disk.ResidentPagesHWM == 0 || body.Disk.ResidentPagesHWM != st.ResidentPagesHWM {
		t.Fatalf("disk HWM %d, store says %d", body.Disk.ResidentPagesHWM, st.ResidentPagesHWM)
	}
	var perShardEvictions int64
	for _, sh := range body.Disk.PerShard {
		perShardEvictions += sh.Evictions
	}
	if perShardEvictions != body.Disk.Evictions {
		t.Fatalf("per-shard evictions sum %d != aggregate %d", perShardEvictions, body.Disk.Evictions)
	}
	if body.CacheCapacity != 8 {
		t.Fatalf("cache_capacity %d, want 8", body.CacheCapacity)
	}
	if body.CacheAnalytics == nil || body.CacheAnalytics.PageCache == nil || body.CacheAnalytics.ResultCache == nil {
		t.Fatalf("cache_analytics incomplete: %+v", body.CacheAnalytics)
	}
	if got := body.CacheAnalytics.PageCache.Ghost.Evictions; got != st.Evictions {
		t.Fatalf("lens evictions %d != page-cache evictions %d", got, st.Evictions)
	}
}
