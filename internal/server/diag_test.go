package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"flos/internal/obs"
)

// diagConfig returns a Config with the full diagnostics plane on: a flight
// recorder promoting everything over threshold into the slow log, and an
// SLO tracker.
func diagConfig(slowLatency time.Duration) Config {
	return Config{
		Recorder: obs.NewFlightRecorder(obs.RecorderConfig{Size: 64, SlowLatency: slowLatency}),
		SLO:      obs.NewSLOTracker(obs.SLOConfig{}),
	}
}

// TestDebugEndpointsDisabled: without a recorder/SLO tracker, the debug
// endpoints answer 404 rather than panicking or serving empty data.
func TestDebugEndpointsDisabled(t *testing.T) {
	ts := newTestServer(t, false)
	for _, ep := range []string{"/debug/flos/slow", "/debug/flos/flightrec", "/debug/flos/slo"} {
		var body map[string]any
		if code := getJSON(t, ts.URL+ep, &body); code != http.StatusNotFound {
			t.Errorf("%s = %d, want 404", ep, code)
		}
	}
}

// TestSlowLogJoinsExemplar is the diagnostics plane's end-to-end join
// contract: a slow query (client-supplied X-Request-ID) shows up in
// /debug/flos/slow with its trajectory, the same ID is its latency bucket's
// exemplar in /metrics?format=json, and /debug/flos/flightrec lists it as
// the newest record.
func TestSlowLogJoinsExemplar(t *testing.T) {
	ts, _ := newTestServerCfg(t, diagConfig(time.Nanosecond)) // everything is slow
	const reqID = "diag-join-1"

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/topk?q=100&k=5&measure=rwr", nil)
	req.Header.Set("X-Request-ID", reqID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("topk = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != reqID {
		t.Fatalf("response id %q, want %q (client IDs must be honored)", got, reqID)
	}

	var slow struct {
		Recorded  uint64              `json:"recorded"`
		SlowTotal uint64              `json:"slow_total"`
		Records   []*obs.FlightRecord `json:"records"`
	}
	if code := getJSON(t, ts.URL+"/debug/flos/slow", &slow); code != http.StatusOK {
		t.Fatalf("slow = %d", code)
	}
	if len(slow.Records) != 1 || slow.SlowTotal != 1 {
		t.Fatalf("slow log = %+v, want exactly the injected query", slow)
	}
	rec := slow.Records[0]
	if rec.ID != reqID || rec.Outcome != "ok" || !rec.Slow {
		t.Fatalf("slow record = %+v, want id %q promoted ok", rec, reqID)
	}
	if len(rec.Trace) == 0 || rec.TraceTotal != rec.Iterations || !rec.Trace[len(rec.Trace)-1].Certified {
		t.Fatalf("slow record trajectory unusable for replay: %d points of %d", len(rec.Trace), rec.TraceTotal)
	}

	var met struct {
		Exemplars []exemplarBody `json:"latency_exemplars"`
		SLO       *obs.SLOSnapshot
	}
	if code := getJSON(t, ts.URL+"/metrics?format=json", &met); code != http.StatusOK {
		t.Fatalf("metrics = %d", code)
	}
	found := false
	for _, ex := range met.Exemplars {
		if ex.ID == reqID {
			found = true
			if ex.LatencyUS != rec.LatencyUS {
				t.Errorf("exemplar latency %d != record latency %d", ex.LatencyUS, rec.LatencyUS)
			}
		}
	}
	if !found {
		t.Errorf("request ID %q missing from latency exemplars: %+v", reqID, met.Exemplars)
	}

	var ring struct {
		Records []*obs.FlightRecord `json:"records"`
	}
	if code := getJSON(t, ts.URL+"/debug/flos/flightrec?n=4", &ring); code != http.StatusOK {
		t.Fatalf("flightrec = %d", code)
	}
	if len(ring.Records) != 1 || ring.Records[0].ID != reqID {
		t.Fatalf("flight ring = %+v, want the injected query newest-first", ring.Records)
	}
}

// TestSLOEndpointAndGauges: query traffic shows up in /debug/flos/slo and
// the flos_slo_* gauges of the Prometheus exposition.
func TestSLOEndpointAndGauges(t *testing.T) {
	ts, _ := newTestServerCfg(t, diagConfig(-1))
	for i := 0; i < 3; i++ {
		if code := getJSON(t, ts.URL+"/topk?q=10&k=5", nil); code != http.StatusOK {
			t.Fatalf("topk = %d", code)
		}
	}

	var slo obs.SLOSnapshot
	if code := getJSON(t, ts.URL+"/debug/flos/slo", &slo); code != http.StatusOK {
		t.Fatalf("slo = %d", code)
	}
	if len(slo.Windows) != 2 {
		t.Fatalf("windows = %+v, want 5m and 1h", slo.Windows)
	}
	for _, w := range slo.Windows {
		// 1 executed + 2 cache hits, all good.
		if w.Total != 3 || w.Errors != 0 || w.Availability != 1 || w.AvailabilityBurnRate != 0 {
			t.Errorf("window %s = %+v, want 3 good events", w.Window, w)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`flos_slo_availability{window="5m"} 1`,
		`flos_slo_availability_burn_rate{window="1h"} 0`,
		`flos_slo_latency_compliance{window="5m"} 1`,
		"flos_slo_availability_objective 0.999",
		"flos_flightrec_recorded_total 3",
		`flos_query_outcomes_total{outcome="ok"} 1`,
		`flos_query_outcomes_total{outcome="hit"} 2`,
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestFlightDumpRoundTrips: the slow-log JSON body decodes back into
// FlightRecords with the trajectory intact — the contract `flos -replay`
// depends on.
func TestFlightDumpRoundTrips(t *testing.T) {
	ts, _ := newTestServerCfg(t, diagConfig(time.Nanosecond))
	if code := getJSON(t, ts.URL+"/topk?q=42&k=5&measure=php", nil); code != http.StatusOK {
		t.Fatalf("topk = %d", code)
	}
	resp, err := http.Get(ts.URL + "/debug/flos/slow")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()

	var dump flightDumpBody
	if err := json.Unmarshal(raw, &dump); err != nil {
		t.Fatalf("slow dump does not round-trip: %v", err)
	}
	rec := dump.Records[0]
	if rec.Query != 42 || rec.K != 5 || rec.Measure != "php" {
		t.Fatalf("round-tripped record = %+v", rec)
	}
	last := rec.Trace[len(rec.Trace)-1]
	if last.Visited != rec.Visited || !last.Certified {
		t.Fatalf("trajectory tail %+v does not match record %+v", last, rec)
	}
}
