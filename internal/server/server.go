// Package server exposes FLoS queries over HTTP — the deployment shape a
// downstream user actually wants: load the graph once, answer exact kNN
// queries from many clients.
//
// Endpoints:
//
//	GET /healthz            liveness
//	GET /stats              graph summary
//	GET /metrics            Prometheus text exposition (latency histograms
//	                        per endpoint and per measure, query/outcome/
//	                        cache/page-cache counters, runtime gauges);
//	                        ?format=json returns the JSON snapshot
//	GET /v1/topk            versioned query API: the legacy parameters plus
//	                        mode=exact|epsilon|anytime, epsilon=<gap budget>,
//	                        deadline=<Go duration>, and
//	                        kernel=auto|serial|parallel|staged (bound-solver
//	                        selection); the response envelope
//	                        carries api_version, the results, and the
//	                        certification block (mode, certified, achieved
//	                        gap, per-node score intervals). In anytime mode
//	                        an expiring deadline answers 200 with the
//	                        current top-k and certified=false — never 504.
//	GET /v1/unified         versioned unified query (same mode parameters);
//	                        per-family certification blocks
//	POST /v1/topk/batch     versioned batch; mode/epsilon in the body apply
//	                        to every member, certification per slot
//	POST /v1/graph/edges    versioned alias of /graph/edges
//	GET /topk?q=42&k=10&measure=rwr[&c=0.5][&L=10][&tau=1e-5][&tighten=0][&trace=1]
//	GET /unified?q=42&k=10[&c=0.5][&trace=1]
//	POST /graph/edges       {"ops":[{"op":"add","u":1,"v":5,"w":1.0},...]}
//	                        applies one atomic batch of edge mutations to a
//	                        live graph (flosd -live): a new snapshot is
//	                        published, cached results whose read footprint
//	                        the batch touched are invalidated surgically,
//	                        and the response carries the new epoch; 409 when
//	                        the server is not serving a live graph
//	POST /topk/batch        {"queries":[1,2,3],"k":10,"measure":"rwr",...}
//	                        answers many queries sharing one option set in a
//	                        single round trip; the response carries one slot
//	                        per query with either results or that query's
//	                        error, and cancellation mid-batch fills the
//	                        unfinished slots instead of failing the call
//	GET /debug/flos/slow       retained slow-query log (replayable with
//	                           `flos -replay`)
//	GET /debug/flos/flightrec  newest n flight-recorder records (?n=, def. 32)
//	GET /debug/flos/slo        multi-window SLO burn-rate snapshot
//	GET /debug/flos/traces     newest kept traces (?n=, def. 32) with tracer
//	                           counters; ?id=<32-hex trace id> returns that
//	                           trace's full span tree
//	GET /debug/flos/cache      cache-analytics snapshots (miss-ratio curves,
//	                           ghost list, working-set windows, top-N hot
//	                           blocks; ?n= bounds the heat ranking, def. 20)
//	                           for the page cache and the result cache
//
// trace=1 returns the per-iteration convergence trajectory (visited/
// boundary/candidate counts, the certification gap, per-phase timings)
// alongside the results; traced requests bypass the result cache.
//
// The legacy unversioned query routes (/topk, /topk/batch, /unified,
// /graph/edges) remain fully supported aliases with their behavior
// unchanged; they answer with a "Deprecation: true" header plus a Link to
// their /v1 successor, and each hit increments flos_legacy_requests_total
// so operators can watch migration progress.
//
// All responses are JSON; errors are {"error": "..."} with a 4xx/5xx
// status. Every response carries an X-Request-ID header, and each request
// emits one structured (log/slog) access record with latency and outcome.
// When span tracing is on (Config.Tracer), every request runs under a root
// "server" span: a client traceparent header (W3C Trace Context) is honored
// — its trace continued, its sampling decision respected — and a malformed
// one is rejected with the same structured 400 every endpoint uses. The
// response always echoes a traceparent header carrying the trace ID and the
// boundary span, and the access record carries the trace ID as the join key
// into /debug/flos/traces, the slow-query log, and histogram exemplars.
// Query execution is delegated to internal/qserve: a bounded worker pool
// answers queries concurrently on every backend (disk-resident stores
// included — their page cache is lock-striped and each worker holds its own
// reader view), requests beyond the admission queue are shed with
// 429 + Retry-After, and each query runs under the pool's deadline as well
// as the client's connection context.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"flos/internal/core"
	"flos/internal/diskgraph"
	"flos/internal/graph"
	"flos/internal/livegraph"
	"flos/internal/measure"
	"flos/internal/obs"
	"flos/internal/obs/cachelens"
	"flos/internal/obs/trace"
	"flos/internal/qserve"
)

// Server wires a graph to HTTP handlers through a query-serving pool.
type Server struct {
	g     graph.Graph
	store *diskgraph.Store // non-nil for disk-resident graphs: /metrics reads page-fault counters
	pool  *qserve.Pool
	log   *slog.Logger

	// httpLat holds one latency histogram per known endpoint path —
	// bounded cardinality by construction.
	httpLat map[string]*obs.Histogram

	// Diagnostics plane (nil when disabled): flight recorder, SLO tracker,
	// and span tracer, shared with the pool.
	rec    *obs.FlightRecorder
	slo    *obs.SLOTracker
	tracer *trace.Tracer

	// resultLens is the result cache's analytics lens (nil when disabled);
	// the page cache's lens, when attached, is reached through s.store.
	resultLens *cachelens.Lens

	// Defaults applied when a request omits parameters.
	defaults measure.Params
	maxK     int
	maxBatch int

	// Serving-mode guardrails for the /v1 endpoints.
	maxEpsilon  float64
	maxDeadline time.Duration

	// legacyReq counts hits on each deprecated unversioned route, keyed by
	// path — the flos_legacy_requests_total counter operators watch while
	// migrating clients to /v1.
	legacyReq map[string]*atomic.Int64
}

// Config tunes the server.
type Config struct {
	// Workers is the query worker count (0 = GOMAXPROCS). Serialize is the
	// legacy switch for one-query-at-a-time operation and is equivalent to
	// Workers = 1; the sharded page cache made it unnecessary for disk
	// stores.
	Workers   int
	Serialize bool
	// QueueDepth bounds the admission queue (0 = 4×Workers); requests over
	// the bound receive 429 with a Retry-After header.
	QueueDepth int
	// CacheEntries bounds the result cache (0 = 1024, negative disables).
	CacheEntries int
	// Timeout is the per-query wall-clock budget (0 = none); queries over
	// budget receive 504.
	Timeout time.Duration
	// Defaults for omitted query parameters; zero value = paper defaults.
	Defaults measure.Params
	// MaxK caps requested k (0 = 1000).
	MaxK int
	// MaxBatch caps the query count of one /topk/batch request (0 = 256).
	MaxBatch int
	// MaxEpsilon caps the epsilon parameter of /v1 ε-certified requests
	// (0 = 1.0, negative disables ε mode). Note THT gaps are on the hop
	// scale (up to Params.L), so THT deployments may want a larger cap.
	MaxEpsilon float64
	// MaxDeadline caps the client-requested deadline of /v1 requests; longer
	// requests are clamped, not rejected (0 = 30s).
	MaxDeadline time.Duration
	// Logger receives structured access and query records; nil selects
	// slog.Default().
	Logger *slog.Logger
	// Recorder, when non-nil, is the query flight recorder: the pool records
	// every outcome into it, outliers are promoted into its slow-query log,
	// and GET /debug/flos/slow and /debug/flos/flightrec serve its contents.
	Recorder *obs.FlightRecorder
	// SLO, when non-nil, tracks multi-window availability and latency burn
	// rates, exported as flos_slo_* gauges and GET /debug/flos/slo.
	SLO *obs.SLOTracker
	// Tracer, when non-nil, turns on end-to-end span tracing: every request
	// runs under a root span, W3C traceparent context is honored and echoed,
	// kept traces are served by GET /debug/flos/traces, and trace IDs join
	// the flight recorder, slow-query log, exemplars, and access logs.
	Tracer *trace.Tracer
	// CacheLens, when non-nil, attaches cache analytics to the result cache:
	// miss-ratio curves, ghost list, working-set windows, and hot-key heat,
	// exported as flos_result_cache_* gauges and GET /debug/flos/cache. The
	// page cache's lens is attached on the store itself (Store.AttachLens)
	// before the server is built; the server discovers it there.
	CacheLens *cachelens.Lens
}

// New builds a Server for g and starts its worker pool; Close releases it.
func New(g graph.Graph, cfg Config) *Server {
	s := &Server{g: g, defaults: cfg.Defaults, maxK: cfg.MaxK, maxBatch: cfg.MaxBatch, log: cfg.Logger}
	if s.log == nil {
		s.log = slog.Default()
	}
	if s.defaults == (measure.Params{}) {
		s.defaults = measure.DefaultParams()
	}
	if s.maxK == 0 {
		s.maxK = 1000
	}
	if s.maxBatch == 0 {
		s.maxBatch = 256
	}
	s.maxEpsilon = cfg.MaxEpsilon
	if s.maxEpsilon == 0 {
		s.maxEpsilon = 1.0
	}
	s.maxDeadline = cfg.MaxDeadline
	if s.maxDeadline == 0 {
		s.maxDeadline = 30 * time.Second
	}
	s.legacyReq = make(map[string]*atomic.Int64, len(legacyPaths))
	for _, lp := range legacyPaths {
		s.legacyReq[lp.path] = &atomic.Int64{}
	}
	if st, ok := g.(*diskgraph.Store); ok {
		s.store = st
	}
	s.httpLat = make(map[string]*obs.Histogram)
	for _, ep := range endpointPaths {
		s.httpLat[ep] = &obs.Histogram{}
	}
	s.rec = cfg.Recorder
	s.slo = cfg.SLO
	s.tracer = cfg.Tracer
	s.resultLens = cfg.CacheLens
	workers := cfg.Workers
	if cfg.Serialize {
		workers = 1
	}
	s.pool = qserve.New(g, qserve.Config{
		Workers:      workers,
		QueueDepth:   cfg.QueueDepth,
		CacheEntries: cfg.CacheEntries,
		Timeout:      cfg.Timeout,
		Logger:       s.log,
		Recorder:     cfg.Recorder,
		SLO:          cfg.SLO,
		CacheLens:    cfg.CacheLens,
	})
	return s
}

// endpointPaths enumerates every served path; the per-endpoint latency
// histograms are keyed by it, keeping metric cardinality bounded.
var endpointPaths = []string{
	"/healthz", "/stats", "/metrics", "/topk", "/topk/batch", "/unified",
	"/graph/edges",
	"/v1/topk", "/v1/topk/batch", "/v1/unified", "/v1/graph/edges",
	"/debug/flos/slow", "/debug/flos/flightrec", "/debug/flos/slo",
	"/debug/flos/traces", "/debug/flos/cache",
}

// Pool exposes the serving pool (epoch bumps, metrics).
func (s *Server) Pool() *qserve.Pool { return s.pool }

// Close stops the worker pool.
func (s *Server) Close() { s.pool.Close() }

// Handler returns the HTTP routing table wrapped in the observability
// middleware (request IDs, access logs, per-endpoint latency histograms).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/v1/topk", s.handleV1TopK)
	mux.HandleFunc("/v1/topk/batch", s.handleV1TopKBatch)
	mux.HandleFunc("/v1/unified", s.handleV1Unified)
	mux.HandleFunc("/v1/graph/edges", s.handleGraphEdges)
	mux.HandleFunc("/topk", s.deprecated("/topk", s.handleTopK))
	mux.HandleFunc("/topk/batch", s.deprecated("/topk/batch", s.handleTopKBatch))
	mux.HandleFunc("/unified", s.deprecated("/unified", s.handleUnified))
	mux.HandleFunc("/graph/edges", s.deprecated("/graph/edges", s.handleGraphEdges))
	mux.HandleFunc("/debug/flos/slow", s.handleSlow)
	mux.HandleFunc("/debug/flos/flightrec", s.handleFlightRec)
	mux.HandleFunc("/debug/flos/slo", s.handleSLO)
	mux.HandleFunc("/debug/flos/traces", s.handleTraces)
	mux.HandleFunc("/debug/flos/cache", s.handleCacheLens)
	return s.instrument(mux)
}

// statusWriter captures the response status for the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// traceStatus maps the HTTP status the handler wrote onto the trace outcome
// the tail sampler keys on: 429 is a shed admission, 504 a deadline, any
// other 5xx a failure.
func traceStatus(httpStatus int) string {
	switch {
	case httpStatus == http.StatusTooManyRequests:
		return "shed"
	case httpStatus == http.StatusGatewayTimeout:
		return "deadline"
	case httpStatus >= 500:
		return "failed"
	default:
		return "ok"
	}
}

// instrument assigns each request an ID (echoed in X-Request-ID), opens the
// request's trace at the W3C boundary, times it into the per-endpoint
// histogram, and emits one structured access record.
//
// The traceparent header is validated whether or not tracing is on — a
// malformed value is the client's error and gets the same structured 400 on
// every endpoint. A valid inbound header continues the caller's trace (its
// sampled flag honored); with the tracer disabled it is simply echoed back,
// so callers can rely on the header round-tripping either way.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = obs.NewRequestID()
		}
		w.Header().Set("X-Request-ID", id)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()

		var parent trace.TraceParent
		var parentErr error
		if hv := r.Header.Get(trace.Header); hv != "" {
			parent, parentErr = trace.ParseTraceparent(hv)
		}
		var a *trace.Active
		var root *trace.SpanHandle
		if parentErr == nil {
			a = s.tracer.StartRequest(parent)
			if a != nil {
				root = a.StartSpan(a.RemoteParent(), r.Method+" "+r.URL.Path,
					trace.Str("request_id", id))
				root.SetKind("server")
				w.Header().Set(trace.Header, trace.TraceParent{
					Trace: a.TraceID(), Span: root.ID(), Sampled: a.HeadSampled(),
				}.String())
				r = r.WithContext(trace.NewContext(r.Context(), a, root.ID()))
			} else if !parent.IsZero() {
				// Tracer off: round-trip the validated client value untouched.
				w.Header().Set(trace.Header, r.Header.Get(trace.Header))
			}
		}

		if parentErr != nil {
			badRequest(sw, "bad traceparent: %v", parentErr)
		} else {
			next.ServeHTTP(sw, r)
		}
		elapsed := time.Since(start)
		root.SetAttrs(trace.Int("http.status", int64(sw.status)))
		root.End()
		a.Finish(traceStatus(sw.status))
		if h, ok := s.httpLat[r.URL.Path]; ok {
			h.Observe(elapsed)
		}
		logAttrs := []any{
			"id", id,
			"method", r.Method,
			"path", r.URL.Path,
			"query", r.URL.RawQuery,
			"status", sw.status,
			"latency", elapsed,
		}
		if a != nil {
			logAttrs = append(logAttrs, "trace", a.TraceIDString())
		}
		s.log.Info("request", logAttrs...)
	})
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func badRequest(w http.ResponseWriter, format string, args ...interface{}) {
	writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf(format, args...)})
}

// writeQueryError maps a pool/engine error onto an HTTP status via the
// typed sentinels (errors.Is): invalid options or query node → 400,
// overload → 429, deadline → 504, cancellation/shutdown → 503, anything
// else → 500.
func writeQueryError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, core.ErrInvalidOptions), errors.Is(err, core.ErrInvalidQuery):
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
	case errors.Is(err, qserve.ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: "server overloaded, retry later"})
	case errors.Is(err, core.ErrDeadline):
		writeJSON(w, http.StatusGatewayTimeout, errorBody{Error: err.Error()})
	case errors.Is(err, core.ErrCanceled), errors.Is(err, qserve.ErrClosed):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// flightDumpBody is the payload of both flight-recorder endpoints; Records
// is newest-first. The same shape is accepted by `flos -replay`.
type flightDumpBody struct {
	// Recorded counts every query ever recorded; SlowTotal every promotion
	// into the slow-query log (both outlive the ring/log retention).
	Recorded  uint64              `json:"recorded"`
	SlowTotal uint64              `json:"slow_total"`
	Records   []*obs.FlightRecord `json:"records"`
}

// handleSlow serves the retained slow-query log: records promoted past the
// recorder's latency/visited thresholds, trajectories included, ready for
// offline replay with `flos -replay`.
func (s *Server) handleSlow(w http.ResponseWriter, _ *http.Request) {
	if s.rec == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "flight recorder disabled (-flightrec 0)"})
		return
	}
	writeJSON(w, http.StatusOK, flightDumpBody{
		Recorded:  s.rec.Recorded(),
		SlowTotal: s.rec.SlowCount(),
		Records:   s.rec.Slow(),
	})
}

// handleFlightRec serves the newest n records of the flight-recorder ring
// (?n=, default 32) — slow or not, the rolling view of recent traffic.
func (s *Server) handleFlightRec(w http.ResponseWriter, r *http.Request) {
	if s.rec == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "flight recorder disabled (-flightrec 0)"})
		return
	}
	n := 32
	if v := r.URL.Query().Get("n"); v != "" {
		var err error
		if n, err = strconv.Atoi(v); err != nil || n < 1 {
			badRequest(w, "bad n: %q", v)
			return
		}
	}
	writeJSON(w, http.StatusOK, flightDumpBody{
		Recorded:  s.rec.Recorded(),
		SlowTotal: s.rec.SlowCount(),
		Records:   s.rec.Last(n),
	})
}

// handleSLO serves the multi-window burn-rate snapshot.
func (s *Server) handleSLO(w http.ResponseWriter, _ *http.Request) {
	if s.slo == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "SLO tracking disabled"})
		return
	}
	writeJSON(w, http.StatusOK, s.slo.Snapshot())
}

// traceSummaryBody is one kept trace's row in the list view.
type traceSummaryBody struct {
	TraceID       string `json:"trace_id"`
	Root          string `json:"root"`
	Status        string `json:"status"`
	Sampled       string `json:"sampled"`
	StartUnixNano int64  `json:"start_unix_nano"`
	DurationUS    int64  `json:"duration_us"`
	Spans         int    `json:"spans"`
}

// traceListBody is the GET /debug/flos/traces payload: tracer counters plus
// the newest kept traces (summaries; fetch one by ?id= for its span tree).
type traceListBody struct {
	Started  uint64             `json:"started"`
	KeptHead uint64             `json:"kept_head"`
	KeptTail uint64             `json:"kept_tail"`
	Dropped  uint64             `json:"dropped"`
	Traces   []traceSummaryBody `json:"traces"`
}

// traceDetailBody is the ?id= payload: the retained trace with its spans
// assembled into the parent-child tree.
type traceDetailBody struct {
	*trace.Trace
	Tree []*trace.SpanNode `json:"tree"`
}

// handleTraces serves the completed-trace ring: the list view with tracer
// counters, or — with ?id=<32-hex trace id> — one trace's full span tree.
// A trace that was never kept (head-dropped without a tail promotion) or has
// been lapped out of the ring answers 404.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if s.tracer == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "span tracing disabled (-trace-ring 0)"})
		return
	}
	if id := r.URL.Query().Get("id"); id != "" {
		tr := s.tracer.Get(id)
		if tr == nil {
			writeJSON(w, http.StatusNotFound, errorBody{Error: "trace not retained: " + id})
			return
		}
		writeJSON(w, http.StatusOK, traceDetailBody{Trace: tr, Tree: tr.Tree()})
		return
	}
	n := 32
	if v := r.URL.Query().Get("n"); v != "" {
		var err error
		if n, err = strconv.Atoi(v); err != nil || n < 1 {
			badRequest(w, "bad n: %q", v)
			return
		}
	}
	st := s.tracer.Stats()
	body := traceListBody{
		Started:  st.Started,
		KeptHead: st.KeptHead,
		KeptTail: st.KeptTail,
		Dropped:  st.Dropped,
		Traces:   []traceSummaryBody{},
	}
	for _, tr := range s.tracer.Last(n) {
		body.Traces = append(body.Traces, traceSummaryBody{
			TraceID:       tr.TraceID,
			Root:          tr.Root,
			Status:        tr.Status,
			Sampled:       tr.Sampled,
			StartUnixNano: tr.StartUnixNano,
			DurationUS:    tr.DurationUS,
			Spans:         len(tr.Spans),
		})
	}
	writeJSON(w, http.StatusOK, body)
}

// pageLens returns the page cache's analytics lens: attached on the disk
// store before the server was built, nil for memory-resident graphs or when
// analytics are off.
func (s *Server) pageLens() *cachelens.Lens {
	if s.store == nil {
		return nil
	}
	return s.store.Lens()
}

// cacheLensBody is the GET /debug/flos/cache payload: one analytics snapshot
// per instrumented cache. A cache without a lens is omitted, so the body also
// documents which planes are on.
type cacheLensBody struct {
	PageCache   *cachelens.Snapshot `json:"page_cache,omitempty"`
	ResultCache *cachelens.Snapshot `json:"result_cache,omitempty"`
}

// handleCacheLens serves the cache-analytics snapshots: miss-ratio curves,
// ghost-list would-have-hits, working-set windows, and the top-N hot blocks
// (?n=, default 20) for every cache with a lens attached. 404 when analytics
// are off everywhere — the same discipline as the other debug endpoints.
func (s *Server) handleCacheLens(w http.ResponseWriter, r *http.Request) {
	pl, rl := s.pageLens(), s.resultLens
	if pl == nil && rl == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "cache analytics disabled (-cachelens 0)"})
		return
	}
	n := 20
	if v := r.URL.Query().Get("n"); v != "" {
		var err error
		if n, err = strconv.Atoi(v); err != nil || n < 1 {
			badRequest(w, "bad n: %q", v)
			return
		}
	}
	var body cacheLensBody
	if pl != nil {
		snap := pl.Snapshot(n)
		body.PageCache = &snap
	}
	if rl != nil {
		snap := rl.Snapshot(n)
		body.ResultCache = &snap
	}
	writeJSON(w, http.StatusOK, body)
}

type statsBody struct {
	Nodes int   `json:"nodes"`
	Edges int64 `json:"edges"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, statsBody{Nodes: s.g.NumNodes(), Edges: s.g.NumEdges()})
}

// metricsBody is the /metrics?format=json payload.
type metricsBody struct {
	QueriesServed  int64   `json:"queries_served"`
	QueriesShed    int64   `json:"queries_shed"`
	Interrupted    int64   `json:"queries_interrupted"`
	Batches        int64   `json:"batches_served"`
	QueriesOK      int64   `json:"queries_ok"`
	QueriesHit     int64   `json:"queries_cache_answered"`
	Deadline       int64   `json:"queries_deadline"`
	Canceled       int64   `json:"queries_canceled"`
	Failed         int64   `json:"queries_failed"`
	Iterations     int64   `json:"engine_iterations"`
	VisitedNodes   int64   `json:"engine_visited_nodes"`
	Sweeps         int64   `json:"engine_sweeps"`
	P50Micros      int64   `json:"latency_p50_us"`
	P99Micros      int64   `json:"latency_p99_us"`
	QueueDepth     int     `json:"queue_depth"`
	QueueCap       int     `json:"queue_cap"`
	Workers        int     `json:"workers"`
	CacheHits      int64   `json:"cache_hits"`
	CacheMisses    int64   `json:"cache_misses"`
	CacheEvictions int64   `json:"cache_evictions"`
	CacheEntries   int     `json:"cache_entries"`
	CacheCapacity  int     `json:"cache_capacity"`
	CacheHitRatio  float64 `json:"cache_hit_ratio"`
	Epoch          uint64  `json:"epoch"`

	// LegacyRequests counts hits on each deprecated unversioned route,
	// keyed by path — migration progress toward /v1.
	LegacyRequests map[string]int64 `json:"legacy_requests"`

	// Measures holds per-measure latency summaries for labels that saw
	// traffic.
	Measures map[string]measureLatencyBody `json:"measures,omitempty"`

	// Exemplars lists, for each overall-latency bucket holding one, the
	// request ID of its most recent sample — the join key into the flight
	// recorder, slow-query log, and access logs.
	Exemplars []exemplarBody `json:"latency_exemplars,omitempty"`

	// Live holds live-graph serving counters; present only when the server
	// runs a livegraph.LiveGraph (flosd -live).
	Live *liveMetricsBody `json:"live,omitempty"`

	// SLO is the burn-rate snapshot; present when SLO tracking is on.
	SLO *obs.SLOSnapshot `json:"slo,omitempty"`

	// Traces holds the span tracer's retention counters; present when span
	// tracing is on.
	Traces *traceMetricsBody `json:"traces,omitempty"`

	// Runtime gauges.
	Runtime runtimeBody `json:"runtime"`

	// Disk page-cache counters; present only for disk-resident graphs.
	Disk *diskMetricsBody `json:"disk,omitempty"`

	// CacheAnalytics mirrors GET /debug/flos/cache (top-20 heat ranking);
	// present when at least one cache has an analytics lens attached.
	CacheAnalytics *cacheLensBody `json:"cache_analytics,omitempty"`
}

type measureLatencyBody struct {
	Count     int64 `json:"count"`
	P50Micros int64 `json:"p50_us"`
	P99Micros int64 `json:"p99_us"`
	// CacheAnswered counts this measure's result-cache answers, which never
	// enter the latency histogram above.
	CacheAnswered int64 `json:"cache_answered,omitempty"`
}

// exemplarBody is one latency bucket's exemplar. TraceID, when the sampled
// request ran under span tracing, is the join key into /debug/flos/traces.
type exemplarBody struct {
	// BucketLEUS is the bucket's inclusive upper bound in microseconds.
	BucketLEUS int64  `json:"bucket_le_us"`
	ID         string `json:"id"`
	TraceID    string `json:"trace_id,omitempty"`
	LatencyUS  int64  `json:"latency_us"`
}

// exemplarBodies flattens a snapshot's per-bucket exemplars.
func exemplarBodies(snap obs.Snapshot) []exemplarBody {
	bounds := obs.BucketBoundsUS()
	var out []exemplarBody
	for i, ex := range snap.Exemplars {
		if ex != nil {
			out = append(out, exemplarBody{BucketLEUS: bounds[i], ID: ex.ID, TraceID: ex.TraceID, LatencyUS: ex.LatencyUS})
		}
	}
	return out
}

// traceMetricsBody is the metrics view of the tracer's retention counters.
type traceMetricsBody struct {
	Started  uint64 `json:"started"`
	KeptHead uint64 `json:"kept_head"`
	KeptTail uint64 `json:"kept_tail"`
	Dropped  uint64 `json:"dropped"`
}

// liveMetricsBody carries the live-graph serving counters: the snapshot
// chain gauges and the surgical-invalidation split.
type liveMetricsBody struct {
	SnapshotsAlive        int64 `json:"snapshots_alive"`
	SnapshotsTotal        int64 `json:"snapshots_total"`
	RowsCoWed             int64 `json:"rows_cowed"`
	OpsApplied            int64 `json:"ops_applied"`
	InvalidationsFull     int64 `json:"invalidations_full"`
	InvalidationsSurgical int64 `json:"invalidations_surgical"`
	CacheRetained         int64 `json:"cache_retained"`
	RecertifyHits         int64 `json:"recertify_hits"`

	// LastBatchSurgical / LastBatchRetained partition the cache entries the
	// most recent mutation batch saw: evicted surgically vs carried forward —
	// the per-epoch survivor gauge.
	LastBatchSurgical int64 `json:"last_batch_surgical"`
	LastBatchRetained int64 `json:"last_batch_retained"`
}

type runtimeBody struct {
	Goroutines     int    `json:"goroutines"`
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	HeapSysBytes   uint64 `json:"heap_sys_bytes"`
	NumGC          uint32 `json:"num_gc"`
}

type diskMetricsBody struct {
	PageHits      int64 `json:"page_hits"`
	PageFaults    int64 `json:"page_faults"`
	FaultsDeduped int64 `json:"faults_deduped"`
	Evictions     int64 `json:"evictions"`
	ResidentBytes int64 `json:"resident_bytes"`
	ResidentPages int   `json:"resident_pages"`
	// ResidentPagesHWM is the all-time occupancy peak (summed over stripes):
	// well under budget means the budget never bound; at budget with a high
	// eviction rate means the working set does not fit.
	ResidentPagesHWM int `json:"resident_pages_hwm"`
	Shards           int `json:"shards"`

	// PerShard breaks the counters down by lock stripe.
	PerShard []shardBody `json:"per_shard"`
}

type shardBody struct {
	Shard            int   `json:"shard"`
	Hits             int64 `json:"hits"`
	Misses           int64 `json:"misses"`
	FaultsDeduped    int64 `json:"faults_deduped"`
	Evictions        int64 `json:"evictions"`
	ResidentBytes    int64 `json:"resident_bytes"`
	ResidentPages    int   `json:"resident_pages"`
	ResidentPagesHWM int   `json:"resident_pages_hwm"`
}

func readRuntime() runtimeBody {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return runtimeBody{
		Goroutines:     runtime.NumGoroutine(),
		HeapAllocBytes: ms.HeapAlloc,
		HeapSysBytes:   ms.HeapSys,
		NumGC:          ms.NumGC,
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" {
		s.metricsJSON(w)
		return
	}
	s.metricsProm(w)
}

func (s *Server) metricsJSON(w http.ResponseWriter) {
	m := s.pool.Metrics()
	body := metricsBody{
		QueriesServed:  m.Served,
		QueriesShed:    m.Shed,
		Interrupted:    m.Interrupted,
		Batches:        m.Batches,
		QueriesOK:      m.OK,
		QueriesHit:     m.Hit,
		Deadline:       m.Deadline,
		Canceled:       m.Canceled,
		Failed:         m.Failed,
		Iterations:     m.IterationsTotal,
		VisitedNodes:   m.VisitedTotal,
		Sweeps:         m.SweepsTotal,
		P50Micros:      m.P50Micros,
		P99Micros:      m.P99Micros,
		QueueDepth:     m.QueueDepth,
		QueueCap:       m.QueueCap,
		Workers:        m.Workers,
		CacheHits:      m.CacheHits,
		CacheMisses:    m.CacheMisses,
		CacheEvictions: m.CacheEvictions,
		CacheEntries:   m.CacheEntries,
		CacheCapacity:  m.CacheCapacity,
		CacheHitRatio:  m.CacheHitRatio(),
		Epoch:          m.Epoch,
		Runtime:        readRuntime(),
	}
	body.LegacyRequests = make(map[string]int64, len(legacyPaths))
	for _, lp := range legacyPaths {
		body.LegacyRequests[lp.path] = s.legacyReq[lp.path].Load()
	}
	if len(m.LatencyByMeasure) > 0 {
		body.Measures = make(map[string]measureLatencyBody, len(m.LatencyByMeasure))
		for label, snap := range m.LatencyByMeasure {
			body.Measures[label] = measureLatencyBody{
				Count:         snap.Count,
				P50Micros:     snap.QuantileUS(0.50),
				P99Micros:     snap.QuantileUS(0.99),
				CacheAnswered: m.HitByMeasure[label],
			}
		}
	}
	body.Exemplars = exemplarBodies(m.Latency)
	if s.pool.Live() {
		body.Live = &liveMetricsBody{
			SnapshotsAlive:        m.SnapshotsAlive,
			SnapshotsTotal:        m.SnapshotsTotal,
			RowsCoWed:             m.RowsCoWed,
			OpsApplied:            m.OpsApplied,
			InvalidationsFull:     m.InvalidationsFull,
			InvalidationsSurgical: m.InvalidationsSurgical,
			CacheRetained:         m.CacheRetained,
			RecertifyHits:         m.RecertifyHits,
			LastBatchSurgical:     m.LastBatchSurgical,
			LastBatchRetained:     m.LastBatchRetained,
		}
	}
	if s.slo != nil {
		snap := s.slo.Snapshot()
		body.SLO = &snap
	}
	if s.tracer != nil {
		st := s.tracer.Stats()
		body.Traces = &traceMetricsBody{
			Started:  st.Started,
			KeptHead: st.KeptHead,
			KeptTail: st.KeptTail,
			Dropped:  st.Dropped,
		}
	}
	if s.store != nil {
		st := s.store.CacheStats()
		disk := &diskMetricsBody{
			PageHits:         st.Hits,
			PageFaults:       st.Misses,
			FaultsDeduped:    st.FaultsDeduped,
			Evictions:        st.Evictions,
			ResidentBytes:    st.ResidentBytes,
			ResidentPages:    st.ResidentPages,
			ResidentPagesHWM: st.ResidentPagesHWM,
			Shards:           st.Shards,
		}
		for _, ss := range s.store.ShardStats() {
			disk.PerShard = append(disk.PerShard, shardBody{
				Shard:            ss.Shard,
				Hits:             ss.Hits,
				Misses:           ss.Misses,
				FaultsDeduped:    ss.FaultsDeduped,
				Evictions:        ss.Evictions,
				ResidentBytes:    ss.ResidentBytes,
				ResidentPages:    ss.ResidentPages,
				ResidentPagesHWM: ss.ResidentPagesHWM,
			})
		}
		body.Disk = disk
	}
	if pl, rl := s.pageLens(), s.resultLens; pl != nil || rl != nil {
		ca := &cacheLensBody{}
		if pl != nil {
			snap := pl.Snapshot(20)
			ca.PageCache = &snap
		}
		if rl != nil {
			snap := rl.Snapshot(20)
			ca.ResultCache = &snap
		}
		body.CacheAnalytics = ca
	}
	writeJSON(w, http.StatusOK, body)
}

// metricsProm writes the Prometheus text exposition.
func (s *Server) metricsProm(w http.ResponseWriter) {
	m := s.pool.Metrics()
	w.Header().Set("Content-Type", obs.ContentType)
	p := obs.NewPromWriter(w)

	p.Counter("flos_queries_served_total", "Queries answered, cache hits and interrupted queries included.", nil, m.Served)
	p.Counter("flos_queries_shed_total", "Admissions refused with 429 because the queue was full.", nil, m.Shed)
	p.Counter("flos_queries_interrupted_total", "Queries ended early by context deadline or cancellation.", nil, m.Interrupted)
	p.Counter("flos_batches_served_total", "DoBatch calls; member queries count in flos_queries_served_total.", nil, m.Batches)
	p.Counter("flos_query_outcomes_total", "Served-query outcomes (ok+hit+deadline+canceled+failed = served).", map[string]string{"outcome": "ok"}, m.OK)
	p.Counter("flos_query_outcomes_total", "Served-query outcomes (ok+hit+deadline+canceled+failed = served).", map[string]string{"outcome": "hit"}, m.Hit)
	p.Counter("flos_query_outcomes_total", "Served-query outcomes (ok+hit+deadline+canceled+failed = served).", map[string]string{"outcome": "deadline"}, m.Deadline)
	p.Counter("flos_query_outcomes_total", "Served-query outcomes (ok+hit+deadline+canceled+failed = served).", map[string]string{"outcome": "canceled"}, m.Canceled)
	p.Counter("flos_query_outcomes_total", "Served-query outcomes (ok+hit+deadline+canceled+failed = served).", map[string]string{"outcome": "failed"}, m.Failed)
	p.Counter("flos_engine_iterations_total", "Local-expansion iterations across all searches.", nil, m.IterationsTotal)
	p.Counter("flos_engine_visited_nodes_total", "Visited-set sizes summed across all searches (the paper's locality metric).", nil, m.VisitedTotal)
	p.Counter("flos_engine_sweeps_total", "Bound-solver relaxations across all searches.", nil, m.SweepsTotal)

	for _, label := range []string{"php", "ei", "dht", "tht", "rwr", "unified"} {
		if snap, ok := m.LatencyByMeasure[label]; ok {
			p.Histogram("flos_query_latency_seconds", "Executed query latency by proximity measure.",
				map[string]string{"measure": label}, snap)
		}
	}
	for _, ep := range endpointPaths {
		if h := s.httpLat[ep]; h != nil && h.Count() > 0 {
			p.Histogram("flos_http_request_duration_seconds", "HTTP request latency by endpoint.",
				map[string]string{"endpoint": ep}, h.Snapshot())
		}
	}
	for _, lp := range legacyPaths {
		p.Counter("flos_legacy_requests_total", "Hits on deprecated unversioned routes (migrate callers to /v1).",
			map[string]string{"endpoint": lp.path}, s.legacyReq[lp.path].Load())
	}

	p.Gauge("flos_queue_depth", "Admitted queries waiting for a worker.", nil, float64(m.QueueDepth))
	p.Gauge("flos_queue_capacity", "Admission queue bound.", nil, float64(m.QueueCap))
	p.Gauge("flos_workers", "Query worker count.", nil, float64(m.Workers))
	p.Counter("flos_result_cache_hits_total", "Result-cache hits.", nil, m.CacheHits)
	p.Counter("flos_result_cache_misses_total", "Result-cache misses.", nil, m.CacheMisses)
	p.Counter("flos_result_cache_evictions_total", "Result-cache evictions.", nil, m.CacheEvictions)
	p.Gauge("flos_result_cache_entries", "Resident result-cache entries.", nil, float64(m.CacheEntries))
	p.Gauge("flos_result_cache_capacity", "Result-cache entry bound (entries/capacity = fill ratio).", nil, float64(m.CacheCapacity))
	p.Gauge("flos_graph_epoch", "Result-cache invalidation epoch.", nil, float64(m.Epoch))
	p.Gauge("flos_graph_nodes", "Nodes in the served graph.", nil, float64(s.g.NumNodes()))
	p.Gauge("flos_graph_edges", "Edges in the served graph.", nil, float64(s.g.NumEdges()))
	p.Counter("flos_cache_invalidations_total", "Result-cache invalidations by kind: full flushes (BumpEpoch) vs surgical per-entry evictions (Mutate footprint intersections).", map[string]string{"kind": "full"}, m.InvalidationsFull)
	p.Counter("flos_cache_invalidations_total", "Result-cache invalidations by kind: full flushes (BumpEpoch) vs surgical per-entry evictions (Mutate footprint intersections).", map[string]string{"kind": "surgical"}, m.InvalidationsSurgical)
	p.Counter("flos_cache_retained_total", "Cached results carried forward across mutation batches (footprint untouched).", nil, m.CacheRetained)
	p.Counter("flos_recertify_hits_total", "Stale entries re-certified by warm-started searches.", nil, m.RecertifyHits)
	if s.pool.Live() {
		p.Gauge("flos_live_snapshots_alive", "Live-graph snapshots currently referenced (current + pinned).", nil, float64(m.SnapshotsAlive))
		p.Counter("flos_live_snapshots_total", "Live-graph snapshots ever published.", nil, m.SnapshotsTotal)
		p.Counter("flos_live_rows_cowed_total", "Adjacency rows re-materialized copy-on-write.", nil, m.RowsCoWed)
		p.Counter("flos_live_ops_applied_total", "Edge mutations applied.", nil, m.OpsApplied)
		p.Gauge("flos_result_cache_last_batch_invalidated", "Entries the most recent mutation batch evicted surgically.", nil, float64(m.LastBatchSurgical))
		p.Gauge("flos_result_cache_last_batch_survivors", "Entries the most recent mutation batch carried forward untouched.", nil, float64(m.LastBatchRetained))
	}

	if s.store != nil {
		for _, ss := range s.store.ShardStats() {
			shard := map[string]string{"shard": strconv.Itoa(ss.Shard)}
			p.Counter("flos_page_cache_hits_total", "Page-cache hits by lock shard.", shard, ss.Hits)
			p.Counter("flos_page_cache_faults_total", "Page faults (disk reads) by lock shard.", shard, ss.Misses)
			p.Counter("flos_page_cache_faults_deduped_total", "Faults deduplicated singleflight-style by lock shard.", shard, ss.FaultsDeduped)
			p.Counter("flos_page_cache_evictions_total", "Pages evicted by LRU to stay under budget, by lock shard.", shard, ss.Evictions)
			p.Gauge("flos_page_cache_resident_bytes", "Resident page bytes by lock shard.", shard, float64(ss.ResidentBytes))
			p.Gauge("flos_page_cache_resident_pages", "Resident pages by lock shard.", shard, float64(ss.ResidentPages))
			p.Gauge("flos_page_cache_resident_pages_hwm", "All-time resident-page peak by lock shard.", shard, float64(ss.ResidentPagesHWM))
		}
	}
	if pl := s.pageLens(); pl != nil {
		lensProm(p, "flos_pagecache", "page cache", pl.Snapshot(0))
	}
	if s.resultLens != nil {
		lensProm(p, "flos_result_cache", "result cache", s.resultLens.Snapshot(0))
	}

	if s.slo != nil {
		snap := s.slo.Snapshot()
		p.Gauge("flos_slo_availability_objective", "Configured availability objective.", nil, snap.AvailabilityObjective)
		p.Gauge("flos_slo_latency_objective", "Configured latency objective (fraction under threshold).", nil, snap.LatencyObjective)
		p.Gauge("flos_slo_latency_threshold_seconds", "Latency SLO threshold.", nil, float64(snap.LatencyThresholdUS)/1e6)
		for _, win := range snap.Windows {
			lbl := map[string]string{"window": win.Window}
			p.Gauge("flos_slo_availability", "Rolling availability (1 when idle).", lbl, win.Availability)
			p.Gauge("flos_slo_availability_burn_rate", "Availability error-budget burn rate (1.0 = sustainable).", lbl, win.AvailabilityBurnRate)
			p.Gauge("flos_slo_latency_compliance", "Fraction of successful queries under the latency threshold.", lbl, win.LatencyCompliance)
			p.Gauge("flos_slo_latency_burn_rate", "Latency error-budget burn rate (1.0 = sustainable).", lbl, win.LatencyBurnRate)
		}
	}
	if s.rec != nil {
		p.Counter("flos_flightrec_recorded_total", "Queries captured by the flight recorder.", nil, int64(s.rec.Recorded()))
		p.Counter("flos_flightrec_slow_total", "Queries promoted into the slow-query log.", nil, int64(s.rec.SlowCount()))
	}
	if s.tracer != nil {
		ts := s.tracer.Stats()
		p.Counter("flos_traces_started_total", "Requests that opened a trace.", nil, int64(ts.Started))
		p.Counter("flos_traces_kept_total", "Traces retained, by sampling decision (head hash vs tail promotion).", map[string]string{"sampled": "head"}, int64(ts.KeptHead))
		p.Counter("flos_traces_kept_total", "Traces retained, by sampling decision (head hash vs tail promotion).", map[string]string{"sampled": "tail"}, int64(ts.KeptTail))
		p.Counter("flos_traces_dropped_total", "Traces recorded but not retained (head-dropped, no tail condition).", nil, int64(ts.Dropped))
	}

	rt := readRuntime()
	p.Gauge("go_goroutines", "Number of goroutines.", nil, float64(rt.Goroutines))
	p.Gauge("go_memstats_heap_alloc_bytes", "Heap bytes allocated and in use.", nil, float64(rt.HeapAllocBytes))
	p.Gauge("go_memstats_heap_sys_bytes", "Heap bytes obtained from the OS.", nil, float64(rt.HeapSysBytes))
	p.Counter("go_gc_cycles_total", "Completed GC cycles.", nil, int64(rt.NumGC))
	if err := p.Err(); err != nil {
		s.log.Warn("metrics exposition write failed", "err", err)
	}
}

// scaleLabel renders an MRC capacity multiple as its metric label: 0.25 →
// "0.25x", 1 → "1x".
func scaleLabel(s float64) string {
	return strconv.FormatFloat(s, 'g', -1, 64) + "x"
}

// lensProm writes one cache-analytics lens as Prometheus gauges under the
// given metric prefix (flos_pagecache / flos_result_cache): the miss-ratio
// curve by scale, the working-set estimates by window, and the ghost list's
// directly measured would-have-hit counters.
func lensProm(p *obs.PromWriter, prefix, what string, snap cachelens.Snapshot) {
	for _, pt := range snap.Curve {
		p.Gauge(prefix+"_mrc_hit_ratio",
			"Estimated "+what+" hit ratio at a multiple of deployed capacity (SHARDS-sampled miss-ratio curve).",
			map[string]string{"scale": scaleLabel(pt.Scale)}, pt.EstHitRatio)
	}
	p.Gauge(prefix+"_lens_hit_ratio", "Measured "+what+" hit ratio over the lens's lifetime (calibration for the curve's 1x point).", nil, snap.HitRatio)
	p.Gauge(prefix+"_lens_sample_rate", "Lens spatial sampling rate (1 in N keys tracked).", nil, float64(snap.SampleRate))
	for _, ws := range snap.WorkingSet {
		win := map[string]string{"window": ws.Window}
		p.Gauge(prefix+"_wss_estimate", "Estimated distinct "+what+" entries touched in the last completed window (scaled sampled count).", win, float64(ws.DistinctEst))
	}
	p.Counter(prefix+"_ghost_evictions_total", "Capacity evictions recorded into the "+what+" ghost list.", nil, snap.Ghost.Evictions)
	p.Counter(prefix+"_ghost_would_have_hits_total", "Misses that would have hit a ~2x-capacity "+what+" (key still in the ghost list).", nil, snap.Ghost.WouldHaveHits)
	p.Gauge(prefix+"_ghost_hit_ratio_at_2x", "Directly measured "+what+" hit ratio at ~2x capacity ((hits + ghost hits) / accesses).", nil, snap.Ghost.HitRatioAt2x)
}

// rankedBody is one result entry.
type rankedBody struct {
	Node  graph.NodeID `json:"node"`
	Score float64      `json:"score"`
}

type topKBody struct {
	Query     graph.NodeID     `json:"query"`
	Measure   string           `json:"measure"`
	K         int              `json:"k"`
	Exact     bool             `json:"exact"`
	Cached    bool             `json:"cached"`
	Visited   int              `json:"visited"`
	Epoch     uint64           `json:"epoch,omitempty"`
	ElapsedUS int64            `json:"elapsed_us"`
	Results   []rankedBody     `json:"results"`
	Trace     []core.IterStats `json:"trace,omitempty"`
}

// parseCommon validates every parameter shared by the query endpoints — q,
// k, c, L, tau, tighten, trace — uniformly, so /topk and /unified reject
// malformed input the same way with a structured 400. Range validation
// happens here (not in the engine) so that errors surfacing later map to
// 5xx statuses.
func (s *Server) parseCommon(r *http.Request) (q graph.NodeID, k int, p measure.Params, tighten, trace bool, err error) {
	p = s.defaults
	tighten = true
	get := r.URL.Query().Get
	qi, err := strconv.Atoi(get("q"))
	if err != nil {
		return 0, 0, p, false, false, fmt.Errorf("missing or bad q: %v", err)
	}
	if qi < 0 || qi >= s.g.NumNodes() {
		return 0, 0, p, false, false, fmt.Errorf("q=%d outside [0,%d)", qi, s.g.NumNodes())
	}
	k = 10
	if v := get("k"); v != "" {
		if k, err = strconv.Atoi(v); err != nil {
			return 0, 0, p, false, false, fmt.Errorf("bad k: %v", err)
		}
	}
	if k < 1 || k > s.maxK {
		return 0, 0, p, false, false, fmt.Errorf("k=%d outside [1,%d]", k, s.maxK)
	}
	if v := get("c"); v != "" {
		if p.C, err = strconv.ParseFloat(v, 64); err != nil {
			return 0, 0, p, false, false, fmt.Errorf("bad c: %v", err)
		}
	}
	if v := get("L"); v != "" {
		if p.L, err = strconv.Atoi(v); err != nil {
			return 0, 0, p, false, false, fmt.Errorf("bad L: %v", err)
		}
	}
	if v := get("tau"); v != "" {
		if p.Tau, err = strconv.ParseFloat(v, 64); err != nil {
			return 0, 0, p, false, false, fmt.Errorf("bad tau: %v", err)
		}
	}
	if err := p.Validate(); err != nil {
		return 0, 0, p, false, false, err
	}
	if v := get("tighten"); v == "0" || strings.EqualFold(v, "false") {
		tighten = false
	}
	if v := get("trace"); v == "1" || strings.EqualFold(v, "true") {
		trace = true
	}
	return graph.NodeID(qi), k, p, tighten, trace, nil
}

func parseMeasure(s string) (measure.Kind, error) {
	switch strings.ToLower(s) {
	case "", "php":
		return measure.PHP, nil
	case "ei":
		return measure.EI, nil
	case "dht":
		return measure.DHT, nil
	case "tht":
		return measure.THT, nil
	case "rwr", "ppr":
		return measure.RWR, nil
	}
	return 0, fmt.Errorf("unknown measure %q", s)
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	q, k, p, tighten, trace, err := s.parseCommon(r)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	kind, err := parseMeasure(r.URL.Query().Get("measure"))
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	opt := core.Options{K: k, Measure: kind, Params: p, Tighten: tighten, TieEps: 1e-9}
	var tc *core.TraceCollector
	if trace {
		tc = &core.TraceCollector{}
		opt.Tracer = tc
	}
	start := time.Now()
	resp, err := s.pool.Do(r.Context(), qserve.Request{ID: w.Header().Get("X-Request-ID"), Query: q, Opt: opt})
	if err != nil {
		writeQueryError(w, err)
		return
	}
	res := resp.TopK
	body := topKBody{
		Query:     q,
		Measure:   kind.String(),
		K:         k,
		Exact:     res.Exact,
		Cached:    resp.CacheHit,
		Visited:   res.Visited,
		Epoch:     resp.Epoch,
		ElapsedUS: time.Since(start).Microseconds(),
	}
	if tc != nil {
		body.Trace = tc.Iters
	}
	for _, rk := range res.TopK {
		body.Results = append(body.Results, rankedBody{Node: rk.Node, Score: rk.Score})
	}
	writeJSON(w, http.StatusOK, body)
}

// batchRequestBody is the POST /topk/batch payload: one option set shared
// by every query. Pointer fields distinguish "omitted" from zero.
type batchRequestBody struct {
	Queries []graph.NodeID `json:"queries"`
	K       int            `json:"k"`
	Measure string         `json:"measure"`
	C       *float64       `json:"c,omitempty"`
	L       *int           `json:"L,omitempty"`
	Tau     *float64       `json:"tau,omitempty"`
	Tighten *bool          `json:"tighten,omitempty"`
}

// batchItemBody is one query's slot of a batch response: results, or that
// query's error (out-of-range node, deadline, cancellation mid-batch).
type batchItemBody struct {
	Query   graph.NodeID `json:"query"`
	Error   string       `json:"error,omitempty"`
	Exact   bool         `json:"exact,omitempty"`
	Cached  bool         `json:"cached,omitempty"`
	Visited int          `json:"visited,omitempty"`
	Results []rankedBody `json:"results,omitempty"`
}

type batchBody struct {
	Measure   string          `json:"measure"`
	K         int             `json:"k"`
	Count     int             `json:"count"`
	Errors    int             `json:"errors"`
	ElapsedUS int64           `json:"elapsed_us"`
	Results   []batchItemBody `json:"results"`
}

// handleTopKBatch answers many queries sharing one option set in a single
// round trip. Batch-level mistakes (bad JSON, bad k/measure/params, too
// many queries) are a 400; everything per-query — including an out-of-range
// node or the client's deadline firing mid-batch — lands in that query's
// slot, so one bad query never poisons its neighbors.
func (s *Server) handleTopKBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST required"})
		return
	}
	var req batchRequestBody
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		badRequest(w, "bad JSON body: %v", err)
		return
	}
	if len(req.Queries) == 0 {
		badRequest(w, "queries must be non-empty")
		return
	}
	if len(req.Queries) > s.maxBatch {
		badRequest(w, "batch of %d queries exceeds limit %d", len(req.Queries), s.maxBatch)
		return
	}
	k := req.K
	if k == 0 {
		k = 10
	}
	if k < 1 || k > s.maxK {
		badRequest(w, "k=%d outside [1,%d]", k, s.maxK)
		return
	}
	kind, err := parseMeasure(req.Measure)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	p := s.defaults
	if req.C != nil {
		p.C = *req.C
	}
	if req.L != nil {
		p.L = *req.L
	}
	if req.Tau != nil {
		p.Tau = *req.Tau
	}
	if err := p.Validate(); err != nil {
		badRequest(w, "%v", err)
		return
	}
	tighten := true
	if req.Tighten != nil {
		tighten = *req.Tighten
	}
	opt := core.Options{K: k, Measure: kind, Params: p, Tighten: tighten, TieEps: 1e-9}

	// Batch members share the HTTP request's ID with a slot suffix, so each
	// member's flight record and exemplar still joins back to the access log.
	id := w.Header().Get("X-Request-ID")
	reqs := make([]qserve.Request, len(req.Queries))
	for i, q := range req.Queries {
		reqs[i] = qserve.Request{ID: fmt.Sprintf("%s-%d", id, i), Query: q, Opt: opt}
	}
	start := time.Now()
	items := s.pool.DoBatch(r.Context(), reqs)
	body := batchBody{
		Measure:   kind.String(),
		K:         k,
		Count:     len(items),
		ElapsedUS: time.Since(start).Microseconds(),
		Results:   make([]batchItemBody, len(items)),
	}
	for i, it := range items {
		slot := batchItemBody{Query: req.Queries[i]}
		if it.Err != nil {
			slot.Error = it.Err.Error()
			body.Errors++
		} else {
			res := it.Resp.TopK
			slot.Exact = res.Exact
			slot.Cached = it.Resp.CacheHit
			slot.Visited = res.Visited
			for _, rk := range res.TopK {
				slot.Results = append(slot.Results, rankedBody{Node: rk.Node, Score: rk.Score})
			}
		}
		body.Results[i] = slot
	}
	writeJSON(w, http.StatusOK, body)
}

// edgeOpBody is one mutation of a POST /graph/edges batch.
type edgeOpBody struct {
	Op string       `json:"op"` // "add" | "remove" | "set"
	U  graph.NodeID `json:"u"`
	V  graph.NodeID `json:"v"`
	W  float64      `json:"w,omitempty"`
}

type graphEdgesRequestBody struct {
	Ops []edgeOpBody `json:"ops"`
}

type graphEdgesBody struct {
	Epoch     uint64 `json:"epoch"`
	Applied   int    `json:"applied"`
	ElapsedUS int64  `json:"elapsed_us"`
}

// handleGraphEdges applies one atomic batch of edge mutations to a live
// graph. The batch publishes a new snapshot and surgically invalidates the
// result cache; in-flight queries keep running against their pinned
// snapshots. Not-live servers answer 409; an invalid batch (bad op name,
// out-of-range node, non-positive weight, add of an existing edge, remove of
// a missing one) is rejected 400 with nothing applied.
func (s *Server) handleGraphEdges(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST required"})
		return
	}
	if !s.pool.Live() {
		writeJSON(w, http.StatusConflict, errorBody{Error: "graph is not live (start flosd with -live)"})
		return
	}
	var req graphEdgesRequestBody
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		badRequest(w, "bad JSON body: %v", err)
		return
	}
	if len(req.Ops) == 0 {
		badRequest(w, "ops must be non-empty")
		return
	}
	if len(req.Ops) > s.maxBatch {
		badRequest(w, "batch of %d ops exceeds limit %d", len(req.Ops), s.maxBatch)
		return
	}
	ops := make([]livegraph.EdgeOp, len(req.Ops))
	for i, ob := range req.Ops {
		op, err := livegraph.ParseOp(ob.Op)
		if err != nil {
			badRequest(w, "op %d: %v", i, err)
			return
		}
		ops[i] = livegraph.EdgeOp{Op: op, U: ob.U, V: ob.V, W: ob.W}
	}
	start := time.Now()
	epoch, err := s.pool.MutateCtx(r.Context(), ops)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, graphEdgesBody{
		Epoch:     epoch,
		Applied:   len(ops),
		ElapsedUS: time.Since(start).Microseconds(),
	})
}

type unifiedBody struct {
	Query     graph.NodeID     `json:"query"`
	K         int              `json:"k"`
	Exact     bool             `json:"exact"`
	Cached    bool             `json:"cached"`
	Visited   int              `json:"visited"`
	Epoch     uint64           `json:"epoch,omitempty"`
	ElapsedUS int64            `json:"elapsed_us"`
	PHPFamily []rankedBody     `json:"php_family"`
	RWR       []rankedBody     `json:"rwr"`
	Trace     []core.IterStats `json:"trace,omitempty"`
}

func (s *Server) handleUnified(w http.ResponseWriter, r *http.Request) {
	q, k, p, tighten, trace, err := s.parseCommon(r)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	opt := core.Options{K: k, Measure: measure.PHP, Params: p, Tighten: tighten, TieEps: 1e-9}
	var tc *core.TraceCollector
	if trace {
		tc = &core.TraceCollector{}
		opt.Tracer = tc
	}
	start := time.Now()
	resp, err := s.pool.Do(r.Context(), qserve.Request{ID: w.Header().Get("X-Request-ID"), Query: q, Opt: opt, Unified: true})
	if err != nil {
		writeQueryError(w, err)
		return
	}
	res := resp.Unified
	body := unifiedBody{
		Query:     q,
		K:         k,
		Exact:     res.Exact,
		Cached:    resp.CacheHit,
		Visited:   res.Visited,
		Epoch:     resp.Epoch,
		ElapsedUS: time.Since(start).Microseconds(),
	}
	if tc != nil {
		body.Trace = tc.Iters
	}
	for _, rk := range res.PHPFamily {
		body.PHPFamily = append(body.PHPFamily, rankedBody{Node: rk.Node, Score: rk.Score})
	}
	for _, rk := range res.RWR {
		body.RWR = append(body.RWR, rankedBody{Node: rk.Node, Score: rk.Score})
	}
	writeJSON(w, http.StatusOK, body)
}
