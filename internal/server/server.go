// Package server exposes FLoS queries over HTTP — the deployment shape a
// downstream user actually wants: load the graph once, answer exact kNN
// queries from many clients.
//
// Endpoints:
//
//	GET /healthz            liveness
//	GET /stats              graph summary
//	GET /metrics            serving metrics (JSON: throughput, latency
//	                        percentiles, queue depth, shed count, cache hit
//	                        ratio, disk page faults)
//	GET /topk?q=42&k=10&measure=rwr[&c=0.5][&L=10][&tau=1e-5][&tighten=0]
//	GET /unified?q=42&k=10[&c=0.5]
//
// All responses are JSON; errors are {"error": "..."} with a 4xx/5xx
// status. Query execution is delegated to internal/qserve: a bounded worker
// pool answers queries concurrently on every backend (disk-resident stores
// included — their page cache is lock-striped and each worker holds its own
// reader view), requests beyond the admission queue are shed with
// 429 + Retry-After, and each query runs under the pool's deadline as well
// as the client's connection context.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"flos/internal/core"
	"flos/internal/diskgraph"
	"flos/internal/graph"
	"flos/internal/measure"
	"flos/internal/qserve"
)

// Server wires a graph to HTTP handlers through a query-serving pool.
type Server struct {
	g     graph.Graph
	store *diskgraph.Store // non-nil for disk-resident graphs: /metrics reads page-fault counters
	pool  *qserve.Pool

	// Defaults applied when a request omits parameters.
	defaults measure.Params
	maxK     int
}

// Config tunes the server.
type Config struct {
	// Workers is the query worker count (0 = GOMAXPROCS). Serialize is the
	// legacy switch for one-query-at-a-time operation and is equivalent to
	// Workers = 1; the sharded page cache made it unnecessary for disk
	// stores.
	Workers   int
	Serialize bool
	// QueueDepth bounds the admission queue (0 = 4×Workers); requests over
	// the bound receive 429 with a Retry-After header.
	QueueDepth int
	// CacheEntries bounds the result cache (0 = 1024, negative disables).
	CacheEntries int
	// Timeout is the per-query wall-clock budget (0 = none); queries over
	// budget receive 504.
	Timeout time.Duration
	// Defaults for omitted query parameters; zero value = paper defaults.
	Defaults measure.Params
	// MaxK caps requested k (0 = 1000).
	MaxK int
}

// New builds a Server for g and starts its worker pool; Close releases it.
func New(g graph.Graph, cfg Config) *Server {
	s := &Server{g: g, defaults: cfg.Defaults, maxK: cfg.MaxK}
	if s.defaults == (measure.Params{}) {
		s.defaults = measure.DefaultParams()
	}
	if s.maxK == 0 {
		s.maxK = 1000
	}
	if st, ok := g.(*diskgraph.Store); ok {
		s.store = st
	}
	workers := cfg.Workers
	if cfg.Serialize {
		workers = 1
	}
	s.pool = qserve.New(g, qserve.Config{
		Workers:      workers,
		QueueDepth:   cfg.QueueDepth,
		CacheEntries: cfg.CacheEntries,
		Timeout:      cfg.Timeout,
	})
	return s
}

// Pool exposes the serving pool (epoch bumps, metrics).
func (s *Server) Pool() *qserve.Pool { return s.pool }

// Close stops the worker pool.
func (s *Server) Close() { s.pool.Close() }

// Handler returns the HTTP routing table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/topk", s.handleTopK)
	mux.HandleFunc("/unified", s.handleUnified)
	return mux
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func badRequest(w http.ResponseWriter, format string, args ...interface{}) {
	writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf(format, args...)})
}

// writeQueryError maps a pool/engine error onto an HTTP status. Parameters
// were fully validated before submission, so remaining failures are
// operational, not client mistakes.
func writeQueryError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, qserve.ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: "server overloaded, retry later"})
	case errors.Is(err, core.ErrDeadline):
		writeJSON(w, http.StatusGatewayTimeout, errorBody{Error: err.Error()})
	case errors.Is(err, core.ErrCanceled), errors.Is(err, qserve.ErrClosed):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

type statsBody struct {
	Nodes int   `json:"nodes"`
	Edges int64 `json:"edges"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, statsBody{Nodes: s.g.NumNodes(), Edges: s.g.NumEdges()})
}

// metricsBody is the /metrics payload.
type metricsBody struct {
	QueriesServed  int64   `json:"queries_served"`
	QueriesShed    int64   `json:"queries_shed"`
	Interrupted    int64   `json:"queries_interrupted"`
	P50Micros      int64   `json:"latency_p50_us"`
	P99Micros      int64   `json:"latency_p99_us"`
	QueueDepth     int     `json:"queue_depth"`
	QueueCap       int     `json:"queue_cap"`
	Workers        int     `json:"workers"`
	CacheHits      int64   `json:"cache_hits"`
	CacheMisses    int64   `json:"cache_misses"`
	CacheEvictions int64   `json:"cache_evictions"`
	CacheEntries   int     `json:"cache_entries"`
	CacheHitRatio  float64 `json:"cache_hit_ratio"`
	Epoch          uint64  `json:"epoch"`

	// Disk page-cache counters; present only for disk-resident graphs.
	Disk *diskMetricsBody `json:"disk,omitempty"`
}

type diskMetricsBody struct {
	PageHits      int64 `json:"page_hits"`
	PageFaults    int64 `json:"page_faults"`
	FaultsDeduped int64 `json:"faults_deduped"`
	ResidentBytes int64 `json:"resident_bytes"`
	ResidentPages int   `json:"resident_pages"`
	Shards        int   `json:"shards"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	m := s.pool.Metrics()
	body := metricsBody{
		QueriesServed:  m.Served,
		QueriesShed:    m.Shed,
		Interrupted:    m.Interrupted,
		P50Micros:      m.P50Micros,
		P99Micros:      m.P99Micros,
		QueueDepth:     m.QueueDepth,
		QueueCap:       m.QueueCap,
		Workers:        m.Workers,
		CacheHits:      m.CacheHits,
		CacheMisses:    m.CacheMisses,
		CacheEvictions: m.CacheEvictions,
		CacheEntries:   m.CacheEntries,
		CacheHitRatio:  m.CacheHitRatio(),
		Epoch:          m.Epoch,
	}
	if s.store != nil {
		st := s.store.CacheStats()
		body.Disk = &diskMetricsBody{
			PageHits:      st.Hits,
			PageFaults:    st.Misses,
			FaultsDeduped: st.FaultsDeduped,
			ResidentBytes: st.ResidentBytes,
			ResidentPages: st.ResidentPages,
			Shards:        st.Shards,
		}
	}
	writeJSON(w, http.StatusOK, body)
}

// rankedBody is one result entry.
type rankedBody struct {
	Node  graph.NodeID `json:"node"`
	Score float64      `json:"score"`
}

type topKBody struct {
	Query     graph.NodeID `json:"query"`
	Measure   string       `json:"measure"`
	K         int          `json:"k"`
	Exact     bool         `json:"exact"`
	Cached    bool         `json:"cached"`
	Visited   int          `json:"visited"`
	ElapsedUS int64        `json:"elapsed_us"`
	Results   []rankedBody `json:"results"`
}

// parseCommon validates every parameter shared by the query endpoints — q,
// k, c, L, tau, tighten — uniformly, so /topk and /unified reject malformed
// input the same way with a structured 400. Range validation happens here
// (not in the engine) so that errors surfacing later map to 5xx statuses.
func (s *Server) parseCommon(r *http.Request) (q graph.NodeID, k int, p measure.Params, tighten bool, err error) {
	p = s.defaults
	tighten = true
	get := r.URL.Query().Get
	qi, err := strconv.Atoi(get("q"))
	if err != nil {
		return 0, 0, p, false, fmt.Errorf("missing or bad q: %v", err)
	}
	if qi < 0 || qi >= s.g.NumNodes() {
		return 0, 0, p, false, fmt.Errorf("q=%d outside [0,%d)", qi, s.g.NumNodes())
	}
	k = 10
	if v := get("k"); v != "" {
		if k, err = strconv.Atoi(v); err != nil {
			return 0, 0, p, false, fmt.Errorf("bad k: %v", err)
		}
	}
	if k < 1 || k > s.maxK {
		return 0, 0, p, false, fmt.Errorf("k=%d outside [1,%d]", k, s.maxK)
	}
	if v := get("c"); v != "" {
		if p.C, err = strconv.ParseFloat(v, 64); err != nil {
			return 0, 0, p, false, fmt.Errorf("bad c: %v", err)
		}
	}
	if v := get("L"); v != "" {
		if p.L, err = strconv.Atoi(v); err != nil {
			return 0, 0, p, false, fmt.Errorf("bad L: %v", err)
		}
	}
	if v := get("tau"); v != "" {
		if p.Tau, err = strconv.ParseFloat(v, 64); err != nil {
			return 0, 0, p, false, fmt.Errorf("bad tau: %v", err)
		}
	}
	if err := p.Validate(); err != nil {
		return 0, 0, p, false, err
	}
	if v := get("tighten"); v == "0" || strings.EqualFold(v, "false") {
		tighten = false
	}
	return graph.NodeID(qi), k, p, tighten, nil
}

func parseMeasure(s string) (measure.Kind, error) {
	switch strings.ToLower(s) {
	case "", "php":
		return measure.PHP, nil
	case "ei":
		return measure.EI, nil
	case "dht":
		return measure.DHT, nil
	case "tht":
		return measure.THT, nil
	case "rwr", "ppr":
		return measure.RWR, nil
	}
	return 0, fmt.Errorf("unknown measure %q", s)
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	q, k, p, tighten, err := s.parseCommon(r)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	kind, err := parseMeasure(r.URL.Query().Get("measure"))
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	opt := core.Options{K: k, Measure: kind, Params: p, Tighten: tighten, TieEps: 1e-9}
	start := time.Now()
	resp, err := s.pool.Do(r.Context(), qserve.Request{Query: q, Opt: opt})
	if err != nil {
		writeQueryError(w, err)
		return
	}
	res := resp.TopK
	body := topKBody{
		Query:     q,
		Measure:   kind.String(),
		K:         k,
		Exact:     res.Exact,
		Cached:    resp.CacheHit,
		Visited:   res.Visited,
		ElapsedUS: time.Since(start).Microseconds(),
	}
	for _, rk := range res.TopK {
		body.Results = append(body.Results, rankedBody{Node: rk.Node, Score: rk.Score})
	}
	writeJSON(w, http.StatusOK, body)
}

type unifiedBody struct {
	Query     graph.NodeID `json:"query"`
	K         int          `json:"k"`
	Exact     bool         `json:"exact"`
	Cached    bool         `json:"cached"`
	Visited   int          `json:"visited"`
	ElapsedUS int64        `json:"elapsed_us"`
	PHPFamily []rankedBody `json:"php_family"`
	RWR       []rankedBody `json:"rwr"`
}

func (s *Server) handleUnified(w http.ResponseWriter, r *http.Request) {
	q, k, p, tighten, err := s.parseCommon(r)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	opt := core.Options{K: k, Measure: measure.PHP, Params: p, Tighten: tighten, TieEps: 1e-9}
	start := time.Now()
	resp, err := s.pool.Do(r.Context(), qserve.Request{Query: q, Opt: opt, Unified: true})
	if err != nil {
		writeQueryError(w, err)
		return
	}
	res := resp.Unified
	body := unifiedBody{
		Query:     q,
		K:         k,
		Exact:     res.Exact,
		Cached:    resp.CacheHit,
		Visited:   res.Visited,
		ElapsedUS: time.Since(start).Microseconds(),
	}
	for _, rk := range res.PHPFamily {
		body.PHPFamily = append(body.PHPFamily, rankedBody{Node: rk.Node, Score: rk.Score})
	}
	for _, rk := range res.RWR {
		body.RWR = append(body.RWR, rankedBody{Node: rk.Node, Score: rk.Score})
	}
	writeJSON(w, http.StatusOK, body)
}
