// Package server exposes FLoS queries over HTTP — the deployment shape a
// downstream user actually wants: load the graph once, answer exact kNN
// queries from many clients.
//
// Endpoints:
//
//	GET /healthz            liveness
//	GET /stats              graph summary
//	GET /topk?q=42&k=10&measure=rwr[&c=0.5][&L=10][&tau=1e-5][&tighten=0]
//	GET /unified?q=42&k=10[&c=0.5]
//
// All responses are JSON. Queries against an in-memory graph run
// concurrently (MemGraph reads are immutable); a disk-resident store
// serializes queries because its page cache is single-reader.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"flos/internal/core"
	"flos/internal/graph"
	"flos/internal/measure"
)

// Server wires a graph to HTTP handlers.
type Server struct {
	g graph.Graph
	// serialize guards graphs whose Neighbors is not safe for concurrent
	// use (the disk store). Nil for in-memory graphs.
	mu *sync.Mutex

	// Defaults applied when a request omits parameters.
	defaults measure.Params
	maxK     int
}

// Config tunes the server.
type Config struct {
	// Serialize forces one query at a time (required for disk stores).
	Serialize bool
	// Defaults for omitted query parameters; zero value = paper defaults.
	Defaults measure.Params
	// MaxK caps requested k (0 = 1000).
	MaxK int
}

// New builds a Server for g.
func New(g graph.Graph, cfg Config) *Server {
	s := &Server{g: g, defaults: cfg.Defaults, maxK: cfg.MaxK}
	if s.defaults == (measure.Params{}) {
		s.defaults = measure.DefaultParams()
	}
	if s.maxK == 0 {
		s.maxK = 1000
	}
	if cfg.Serialize {
		s.mu = &sync.Mutex{}
	}
	return s
}

// Handler returns the HTTP routing table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/topk", s.handleTopK)
	mux.HandleFunc("/unified", s.handleUnified)
	return mux
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func badRequest(w http.ResponseWriter, format string, args ...interface{}) {
	writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

type statsBody struct {
	Nodes int   `json:"nodes"`
	Edges int64 `json:"edges"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, statsBody{Nodes: s.g.NumNodes(), Edges: s.g.NumEdges()})
}

// rankedBody is one result entry.
type rankedBody struct {
	Node  graph.NodeID `json:"node"`
	Score float64      `json:"score"`
}

type topKBody struct {
	Query     graph.NodeID `json:"query"`
	Measure   string       `json:"measure"`
	K         int          `json:"k"`
	Exact     bool         `json:"exact"`
	Visited   int          `json:"visited"`
	ElapsedUS int64        `json:"elapsed_us"`
	Results   []rankedBody `json:"results"`
}

func (s *Server) parseCommon(r *http.Request) (q graph.NodeID, k int, p measure.Params, tighten bool, err error) {
	p = s.defaults
	tighten = true
	get := r.URL.Query().Get
	qi, err := strconv.Atoi(get("q"))
	if err != nil {
		return 0, 0, p, false, fmt.Errorf("missing or bad q: %v", err)
	}
	if qi < 0 || qi >= s.g.NumNodes() {
		return 0, 0, p, false, fmt.Errorf("q=%d outside [0,%d)", qi, s.g.NumNodes())
	}
	k = 10
	if v := get("k"); v != "" {
		if k, err = strconv.Atoi(v); err != nil {
			return 0, 0, p, false, fmt.Errorf("bad k: %v", err)
		}
	}
	if k < 1 || k > s.maxK {
		return 0, 0, p, false, fmt.Errorf("k=%d outside [1,%d]", k, s.maxK)
	}
	if v := get("c"); v != "" {
		if p.C, err = strconv.ParseFloat(v, 64); err != nil {
			return 0, 0, p, false, fmt.Errorf("bad c: %v", err)
		}
	}
	if v := get("L"); v != "" {
		if p.L, err = strconv.Atoi(v); err != nil {
			return 0, 0, p, false, fmt.Errorf("bad L: %v", err)
		}
	}
	if v := get("tau"); v != "" {
		if p.Tau, err = strconv.ParseFloat(v, 64); err != nil {
			return 0, 0, p, false, fmt.Errorf("bad tau: %v", err)
		}
	}
	if v := get("tighten"); v == "0" || strings.EqualFold(v, "false") {
		tighten = false
	}
	return graph.NodeID(qi), k, p, tighten, nil
}

func parseMeasure(s string) (measure.Kind, error) {
	switch strings.ToLower(s) {
	case "", "php":
		return measure.PHP, nil
	case "ei":
		return measure.EI, nil
	case "dht":
		return measure.DHT, nil
	case "tht":
		return measure.THT, nil
	case "rwr", "ppr":
		return measure.RWR, nil
	}
	return 0, fmt.Errorf("unknown measure %q", s)
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	q, k, p, tighten, err := s.parseCommon(r)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	kind, err := parseMeasure(r.URL.Query().Get("measure"))
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	opt := core.Options{K: k, Measure: kind, Params: p, Tighten: tighten, TieEps: 1e-9}
	if s.mu != nil {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	start := time.Now()
	res, err := core.TopK(s.g, q, opt)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	body := topKBody{
		Query:     q,
		Measure:   kind.String(),
		K:         k,
		Exact:     res.Exact,
		Visited:   res.Visited,
		ElapsedUS: time.Since(start).Microseconds(),
	}
	for _, rk := range res.TopK {
		body.Results = append(body.Results, rankedBody{Node: rk.Node, Score: rk.Score})
	}
	writeJSON(w, http.StatusOK, body)
}

type unifiedBody struct {
	Query     graph.NodeID `json:"query"`
	K         int          `json:"k"`
	Exact     bool         `json:"exact"`
	Visited   int          `json:"visited"`
	ElapsedUS int64        `json:"elapsed_us"`
	PHPFamily []rankedBody `json:"php_family"`
	RWR       []rankedBody `json:"rwr"`
}

func (s *Server) handleUnified(w http.ResponseWriter, r *http.Request) {
	q, k, p, tighten, err := s.parseCommon(r)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	opt := core.Options{K: k, Measure: measure.PHP, Params: p, Tighten: tighten, TieEps: 1e-9}
	if s.mu != nil {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	start := time.Now()
	res, err := core.UnifiedTopK(s.g, q, opt)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	body := unifiedBody{
		Query:     q,
		K:         k,
		Exact:     res.Exact,
		Visited:   res.Visited,
		ElapsedUS: time.Since(start).Microseconds(),
	}
	for _, rk := range res.PHPFamily {
		body.PHPFamily = append(body.PHPFamily, rankedBody{Node: rk.Node, Score: rk.Score})
	}
	for _, rk := range res.RWR {
		body.RWR = append(body.RWR, rankedBody{Node: rk.Node, Score: rk.Score})
	}
	writeJSON(w, http.StatusOK, body)
}
