package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"flos/internal/core"
	"flos/internal/gen"
	"flos/internal/qserve"
)

func newTestServer(t *testing.T, serialize bool) *httptest.Server {
	t.Helper()
	ts, _ := newTestServerCfg(t, Config{Serialize: serialize})
	return ts
}

func newTestServerCfg(t *testing.T, cfg Config) (*httptest.Server, *Server) {
	t.Helper()
	g, err := gen.Community(2000, 5400, gen.DefaultCommunityParams(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	srv := New(g, cfg)
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv
}

func getJSON(t *testing.T, url string, out interface{}) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestHealthAndStats(t *testing.T) {
	ts := newTestServer(t, false)
	var health map[string]string
	if code := getJSON(t, ts.URL+"/healthz", &health); code != 200 || health["status"] != "ok" {
		t.Fatalf("healthz: %d %v", code, health)
	}
	var stats statsBody
	if code := getJSON(t, ts.URL+"/stats", &stats); code != 200 {
		t.Fatalf("stats code %d", code)
	}
	if stats.Nodes != 2000 || stats.Edges != 5400 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestTopKEndpoint(t *testing.T) {
	ts := newTestServer(t, false)
	for _, m := range []string{"php", "ei", "dht", "tht", "rwr"} {
		var body topKBody
		url := fmt.Sprintf("%s/topk?q=100&k=5&measure=%s", ts.URL, m)
		if code := getJSON(t, url, &body); code != 200 {
			t.Fatalf("%s: code %d", m, code)
		}
		if len(body.Results) != 5 || !body.Exact {
			t.Fatalf("%s: %+v", m, body)
		}
		if body.Visited <= 0 || body.Visited > 2000 {
			t.Fatalf("%s: visited %d", m, body.Visited)
		}
		for _, r := range body.Results {
			if r.Node == 100 {
				t.Fatalf("%s: query in its own results", m)
			}
		}
	}
}

func TestTopKParameters(t *testing.T) {
	ts := newTestServer(t, false)
	var body topKBody
	url := ts.URL + "/topk?q=100&k=3&measure=php&c=0.8&tau=1e-7&tighten=0"
	if code := getJSON(t, url, &body); code != 200 {
		t.Fatalf("code %d", code)
	}
	if body.K != 3 || body.Measure != "PHP" {
		t.Fatalf("body = %+v", body)
	}
}

func TestUnifiedEndpoint(t *testing.T) {
	ts := newTestServer(t, false)
	var body unifiedBody
	if code := getJSON(t, ts.URL+"/unified?q=42&k=4", &body); code != 200 {
		t.Fatalf("code %d", code)
	}
	if len(body.PHPFamily) != 4 || len(body.RWR) != 4 || !body.Exact {
		t.Fatalf("body = %+v", body)
	}
}

func TestBadRequests(t *testing.T) {
	ts := newTestServer(t, false)
	cases := []string{
		"/topk",                  // missing q
		"/topk?q=abc",            // bad q
		"/topk?q=999999",         // out of range
		"/topk?q=1&k=0",          // bad k
		"/topk?q=1&k=99999",      // k over cap
		"/topk?q=1&k=x",          // unparsable k
		"/topk?q=1&measure=nope", // unknown measure
		"/topk?q=1&c=2",          // invalid decay (caught by Validate)
		"/topk?q=1&c=x",          // unparsable c
		"/topk?q=1&L=x",          // unparsable L
		"/topk?q=1&tau=x",        // unparsable tau
		"/topk?q=1&tau=0",        // out-of-range tau
		"/topk?q=1&L=-1",         // out-of-range L
		"/unified?q=zz",          // bad unified q
		// /unified must validate identically to /topk.
		"/unified?q=1&k=0",
		"/unified?q=1&k=99999",
		"/unified?q=1&c=2",
		"/unified?q=1&tau=0",
		"/unified?q=999999",
	}
	for _, c := range cases {
		var e errorBody
		if code := getJSON(t, ts.URL+c, &e); code != http.StatusBadRequest {
			t.Errorf("%s: code %d, want 400", c, code)
		}
		if e.Error == "" {
			t.Errorf("%s: empty error body", c)
		}
	}
}

// TestConcurrentQueries hammers the in-memory server from many goroutines —
// MemGraph reads must be race-free (run with -race in CI). The queue is
// sized above the offered load so a slow single-core run cannot shed
// (shedding has its own tests in internal/qserve).
func TestConcurrentQueries(t *testing.T) {
	ts, _ := newTestServerCfg(t, Config{QueueDepth: 64})
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				q := (w*331 + i*17) % 2000
				url := fmt.Sprintf("%s/topk?q=%d&k=5&measure=rwr", ts.URL, q)
				resp, err := http.Get(url)
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != 200 {
					errs <- fmt.Errorf("q=%d: status %d", q, resp.StatusCode)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestCachedResponses checks the result cache surfaces through HTTP: a
// repeated query is served from cache (cached:true, identical results).
func TestCachedResponses(t *testing.T) {
	ts, _ := newTestServerCfg(t, Config{CacheEntries: 64})
	var cold, warm topKBody
	url := ts.URL + "/topk?q=77&k=5&measure=rwr"
	if code := getJSON(t, url, &cold); code != 200 || cold.Cached {
		t.Fatalf("cold: code %d cached %v", code, cold.Cached)
	}
	if code := getJSON(t, url, &warm); code != 200 || !warm.Cached {
		t.Fatalf("warm: code %d cached %v, want cache hit", code, warm.Cached)
	}
	if fmt.Sprintf("%v", warm.Results) != fmt.Sprintf("%v", cold.Results) {
		t.Fatalf("cached results differ: %v vs %v", warm.Results, cold.Results)
	}
}

// TestMetricsEndpoint checks /metrics?format=json reports the qserve
// counters (the bare endpoint now serves Prometheus text).
func TestMetricsEndpoint(t *testing.T) {
	ts, _ := newTestServerCfg(t, Config{CacheEntries: 64})
	url := ts.URL + "/topk?q=12&k=5"
	for i := 0; i < 3; i++ {
		if code := getJSON(t, url, nil); code != 200 {
			t.Fatalf("warmup query: code %d", code)
		}
	}
	var m metricsBody
	if code := getJSON(t, ts.URL+"/metrics?format=json", &m); code != 200 {
		t.Fatalf("metrics: code %d", code)
	}
	if m.QueriesServed < 3 {
		t.Errorf("queries_served = %d, want >= 3", m.QueriesServed)
	}
	if m.CacheHits < 2 || m.CacheHitRatio <= 0 {
		t.Errorf("cache hits %d ratio %g, want repeat queries cached", m.CacheHits, m.CacheHitRatio)
	}
	if m.Workers < 1 || m.QueueCap < 1 {
		t.Errorf("pool shape: %+v", m)
	}
	if m.P50Micros <= 0 {
		t.Errorf("p50 = %d, want positive after executed queries", m.P50Micros)
	}
	if m.Iterations <= 0 || m.VisitedNodes <= 0 {
		t.Errorf("work totals: iters %d visited %d, want positive", m.Iterations, m.VisitedNodes)
	}
	if lat, ok := m.Measures["php"]; !ok || lat.Count < 1 || lat.P99Micros < lat.P50Micros {
		t.Errorf("measures[php] = %+v ok=%v, want count>=1 and p99>=p50", lat, ok)
	}
	if m.Runtime.Goroutines < 1 || m.Runtime.HeapAllocBytes == 0 {
		t.Errorf("runtime gauges missing: %+v", m.Runtime)
	}
	if m.Disk != nil {
		t.Errorf("disk metrics present for in-memory graph")
	}
}

// TestMetricsPrometheus checks the default /metrics response is valid
// Prometheus text exposition: right content type, one HELP/TYPE pair per
// family, cumulative histogram buckets ending in +Inf, and the counters the
// warmup queries must have moved.
func TestMetricsPrometheus(t *testing.T) {
	ts, _ := newTestServerCfg(t, Config{CacheEntries: 64})
	for i := 0; i < 3; i++ {
		if code := getJSON(t, ts.URL+"/topk?q=12&k=5&measure=rwr", nil); code != 200 {
			t.Fatalf("warmup query: code %d", code)
		}
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("code %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)

	for _, want := range []string{
		"# TYPE flos_queries_served_total counter",
		"# TYPE flos_query_latency_seconds histogram",
		`flos_query_latency_seconds_bucket{le="+Inf",measure="rwr"}`,
		`flos_query_latency_seconds_count{measure="rwr"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if !strings.Contains(text, `flos_http_request_duration_seconds_bucket{endpoint="/topk"`) {
		t.Errorf("missing per-endpoint http histogram:\n%s", text)
	}
	if !strings.Contains(text, "go_goroutines") || !strings.Contains(text, "go_memstats_heap_alloc_bytes") {
		t.Errorf("missing runtime gauges")
	}

	// Each family gets exactly one TYPE line; samples may interleave freely.
	typeSeen := map[string]int{}
	var servedVal int64 = -1
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			typeSeen[f[2]]++
		}
		if strings.HasPrefix(line, "flos_queries_served_total ") {
			v, err := strconv.ParseInt(strings.Fields(line)[1], 10, 64)
			if err != nil {
				t.Fatalf("bad sample %q: %v", line, err)
			}
			servedVal = v
		}
	}
	for name, n := range typeSeen {
		if n != 1 {
			t.Errorf("family %s has %d TYPE lines", name, n)
		}
	}
	if servedVal < 3 {
		t.Errorf("flos_queries_served_total = %d, want >= 3", servedVal)
	}

	// Histogram buckets must be cumulative (monotone non-decreasing in le
	// order) and end at _count.
	var prev int64 = -1
	var bucketLines int
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, `flos_query_latency_seconds_bucket{le=`) || !strings.Contains(line, `measure="rwr"`) {
			continue
		}
		bucketLines++
		v, err := strconv.ParseInt(strings.Fields(line)[1], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket sample %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("non-cumulative buckets: %d after %d in %q", v, prev, line)
		}
		prev = v
	}
	if bucketLines < 2 {
		t.Fatalf("only %d rwr bucket samples", bucketLines)
	}
}

// TestTraceEndpoint checks trace=1 returns the per-iteration convergence
// trajectory and that its final entry certifies the stopping rule (the gap
// between the k-th lower bound and the best outsider upper bound is
// nonnegative up to ties) — the paper's Theorem 1 condition, observable.
func TestTraceEndpoint(t *testing.T) {
	ts, _ := newTestServerCfg(t, Config{CacheEntries: 64})

	var plain topKBody
	if code := getJSON(t, ts.URL+"/topk?q=100&k=5&measure=rwr", &plain); code != 200 {
		t.Fatalf("plain: code %d", code)
	}
	if len(plain.Trace) != 0 {
		t.Fatalf("trace present without trace=1")
	}

	var traced topKBody
	if code := getJSON(t, ts.URL+"/topk?q=100&k=5&measure=rwr&trace=1", &traced); code != 200 {
		t.Fatalf("traced: code %d", code)
	}
	if len(traced.Trace) == 0 {
		t.Fatal("trace=1 returned no trajectory")
	}
	if traced.Cached {
		t.Fatal("traced request served from cache")
	}
	last := traced.Trace[len(traced.Trace)-1]
	if !last.Certified || !last.GapValid {
		t.Fatalf("final entry not certified: %+v", last)
	}
	if last.Gap < -1e-9 {
		t.Fatalf("final gap %g violates stopping rule", last.Gap)
	}
	prevVisited := 0
	for i, it := range traced.Trace {
		if it.Visited < prevVisited {
			t.Fatalf("iter %d: visited shrank %d -> %d", i, prevVisited, it.Visited)
		}
		prevVisited = it.Visited
	}
	if last.Visited != traced.Visited {
		t.Fatalf("trace visited %d != result visited %d", last.Visited, traced.Visited)
	}
	if fmt.Sprintf("%v", traced.Results) != fmt.Sprintf("%v", plain.Results) {
		t.Fatalf("traced results differ from plain: %v vs %v", traced.Results, plain.Results)
	}

	var uni unifiedBody
	if code := getJSON(t, ts.URL+"/unified?q=42&k=4&trace=1", &uni); code != 200 {
		t.Fatalf("unified traced: code %d", code)
	}
	if len(uni.Trace) == 0 {
		t.Fatal("unified trace=1 returned no trajectory")
	}
	ulast := uni.Trace[len(uni.Trace)-1]
	if !ulast.Certified {
		t.Fatalf("unified final entry not certified: %+v", ulast)
	}
}

// TestWriteQueryError is the table-driven outcome map: every pool/engine
// error class must land on its documented status and headers.
func TestWriteQueryError(t *testing.T) {
	cases := []struct {
		name       string
		err        error
		wantCode   int
		wantHeader string // header that must be non-empty, "" for none
	}{
		{"overloaded", qserve.ErrOverloaded, http.StatusTooManyRequests, "Retry-After"},
		{"deadline", &core.Interrupted{Cause: core.ErrDeadline}, http.StatusGatewayTimeout, ""},
		{"canceled", &core.Interrupted{Cause: core.ErrCanceled}, http.StatusServiceUnavailable, ""},
		{"closed", qserve.ErrClosed, http.StatusServiceUnavailable, ""},
		{"other", fmt.Errorf("disk on fire"), http.StatusInternalServerError, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			writeQueryError(rec, tc.err)
			if rec.Code != tc.wantCode {
				t.Fatalf("code %d, want %d", rec.Code, tc.wantCode)
			}
			if tc.wantHeader != "" && rec.Header().Get(tc.wantHeader) == "" {
				t.Fatalf("missing %s header", tc.wantHeader)
			}
			var e errorBody
			if err := json.NewDecoder(rec.Body).Decode(&e); err != nil || e.Error == "" {
				t.Fatalf("body not a structured error: %v %q", err, e.Error)
			}
		})
	}
}

// TestRequestIDAndAccessLog checks every response carries a request ID and
// each request emits one structured access record with latency and status.
func TestRequestIDAndAccessLog(t *testing.T) {
	var buf syncBuffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	ts, _ := newTestServerCfg(t, Config{Logger: logger})

	resp1, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp1.Body.Close()
	id1 := resp1.Header.Get("X-Request-ID")
	resp2, err := http.Get(ts.URL + "/topk?q=1&k=0") // 400 path must log too
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	id2 := resp2.Header.Get("X-Request-ID")
	if id1 == "" || id2 == "" || id1 == id2 {
		t.Fatalf("request IDs %q / %q, want distinct non-empty", id1, id2)
	}

	var sawHealth, sawBad bool
	for _, line := range strings.Split(buf.String(), "\n") {
		if line == "" {
			continue
		}
		var rec map[string]interface{}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("non-JSON log line %q: %v", line, err)
		}
		if rec["msg"] != "request" {
			continue
		}
		switch rec["path"] {
		case "/healthz":
			sawHealth = rec["status"] == float64(200) && rec["id"] == id1
		case "/topk":
			sawBad = rec["status"] == float64(400) && rec["id"] == id2
		}
		if _, ok := rec["latency"]; !ok {
			t.Fatalf("access record without latency: %v", rec)
		}
	}
	if !sawHealth || !sawBad {
		t.Fatalf("access records missing: healthz=%v topk400=%v in\n%s", sawHealth, sawBad, buf.String())
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for capturing log output.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestQueryTimeout maps the pool deadline onto 504.
func TestQueryTimeout(t *testing.T) {
	ts, _ := newTestServerCfg(t, Config{Timeout: time.Nanosecond, CacheEntries: -1})
	var e errorBody
	if code := getJSON(t, ts.URL+"/topk?q=5&k=3", &e); code != http.StatusGatewayTimeout {
		t.Fatalf("code %d, want 504", code)
	}
	if e.Error == "" {
		t.Fatal("empty error body")
	}
}

func TestSerializedMode(t *testing.T) {
	ts := newTestServer(t, true)
	var body topKBody
	if code := getJSON(t, ts.URL+"/topk?q=5&k=3", &body); code != 200 {
		t.Fatalf("code %d", code)
	}
	if len(body.Results) != 3 {
		t.Fatalf("results %d", len(body.Results))
	}
}
