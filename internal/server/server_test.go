package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"flos/internal/gen"
)

func newTestServer(t *testing.T, serialize bool) *httptest.Server {
	t.Helper()
	ts, _ := newTestServerCfg(t, Config{Serialize: serialize})
	return ts
}

func newTestServerCfg(t *testing.T, cfg Config) (*httptest.Server, *Server) {
	t.Helper()
	g, err := gen.Community(2000, 5400, gen.DefaultCommunityParams(), 3)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(g, cfg)
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv
}

func getJSON(t *testing.T, url string, out interface{}) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestHealthAndStats(t *testing.T) {
	ts := newTestServer(t, false)
	var health map[string]string
	if code := getJSON(t, ts.URL+"/healthz", &health); code != 200 || health["status"] != "ok" {
		t.Fatalf("healthz: %d %v", code, health)
	}
	var stats statsBody
	if code := getJSON(t, ts.URL+"/stats", &stats); code != 200 {
		t.Fatalf("stats code %d", code)
	}
	if stats.Nodes != 2000 || stats.Edges != 5400 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestTopKEndpoint(t *testing.T) {
	ts := newTestServer(t, false)
	for _, m := range []string{"php", "ei", "dht", "tht", "rwr"} {
		var body topKBody
		url := fmt.Sprintf("%s/topk?q=100&k=5&measure=%s", ts.URL, m)
		if code := getJSON(t, url, &body); code != 200 {
			t.Fatalf("%s: code %d", m, code)
		}
		if len(body.Results) != 5 || !body.Exact {
			t.Fatalf("%s: %+v", m, body)
		}
		if body.Visited <= 0 || body.Visited > 2000 {
			t.Fatalf("%s: visited %d", m, body.Visited)
		}
		for _, r := range body.Results {
			if r.Node == 100 {
				t.Fatalf("%s: query in its own results", m)
			}
		}
	}
}

func TestTopKParameters(t *testing.T) {
	ts := newTestServer(t, false)
	var body topKBody
	url := ts.URL + "/topk?q=100&k=3&measure=php&c=0.8&tau=1e-7&tighten=0"
	if code := getJSON(t, url, &body); code != 200 {
		t.Fatalf("code %d", code)
	}
	if body.K != 3 || body.Measure != "PHP" {
		t.Fatalf("body = %+v", body)
	}
}

func TestUnifiedEndpoint(t *testing.T) {
	ts := newTestServer(t, false)
	var body unifiedBody
	if code := getJSON(t, ts.URL+"/unified?q=42&k=4", &body); code != 200 {
		t.Fatalf("code %d", code)
	}
	if len(body.PHPFamily) != 4 || len(body.RWR) != 4 || !body.Exact {
		t.Fatalf("body = %+v", body)
	}
}

func TestBadRequests(t *testing.T) {
	ts := newTestServer(t, false)
	cases := []string{
		"/topk",                  // missing q
		"/topk?q=abc",            // bad q
		"/topk?q=999999",         // out of range
		"/topk?q=1&k=0",          // bad k
		"/topk?q=1&k=99999",      // k over cap
		"/topk?q=1&k=x",          // unparsable k
		"/topk?q=1&measure=nope", // unknown measure
		"/topk?q=1&c=2",          // invalid decay (caught by Validate)
		"/topk?q=1&c=x",          // unparsable c
		"/topk?q=1&L=x",          // unparsable L
		"/topk?q=1&tau=x",        // unparsable tau
		"/topk?q=1&tau=0",        // out-of-range tau
		"/topk?q=1&L=-1",         // out-of-range L
		"/unified?q=zz",          // bad unified q
		// /unified must validate identically to /topk.
		"/unified?q=1&k=0",
		"/unified?q=1&k=99999",
		"/unified?q=1&c=2",
		"/unified?q=1&tau=0",
		"/unified?q=999999",
	}
	for _, c := range cases {
		var e errorBody
		if code := getJSON(t, ts.URL+c, &e); code != http.StatusBadRequest {
			t.Errorf("%s: code %d, want 400", c, code)
		}
		if e.Error == "" {
			t.Errorf("%s: empty error body", c)
		}
	}
}

// TestConcurrentQueries hammers the in-memory server from many goroutines —
// MemGraph reads must be race-free (run with -race in CI).
func TestConcurrentQueries(t *testing.T) {
	ts := newTestServer(t, false)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				q := (w*331 + i*17) % 2000
				url := fmt.Sprintf("%s/topk?q=%d&k=5&measure=rwr", ts.URL, q)
				resp, err := http.Get(url)
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != 200 {
					errs <- fmt.Errorf("q=%d: status %d", q, resp.StatusCode)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestCachedResponses checks the result cache surfaces through HTTP: a
// repeated query is served from cache (cached:true, identical results).
func TestCachedResponses(t *testing.T) {
	ts, _ := newTestServerCfg(t, Config{CacheEntries: 64})
	var cold, warm topKBody
	url := ts.URL + "/topk?q=77&k=5&measure=rwr"
	if code := getJSON(t, url, &cold); code != 200 || cold.Cached {
		t.Fatalf("cold: code %d cached %v", code, cold.Cached)
	}
	if code := getJSON(t, url, &warm); code != 200 || !warm.Cached {
		t.Fatalf("warm: code %d cached %v, want cache hit", code, warm.Cached)
	}
	if fmt.Sprintf("%v", warm.Results) != fmt.Sprintf("%v", cold.Results) {
		t.Fatalf("cached results differ: %v vs %v", warm.Results, cold.Results)
	}
}

// TestMetricsEndpoint checks /metrics reports the qserve counters.
func TestMetricsEndpoint(t *testing.T) {
	ts, _ := newTestServerCfg(t, Config{CacheEntries: 64})
	url := ts.URL + "/topk?q=12&k=5"
	for i := 0; i < 3; i++ {
		if code := getJSON(t, url, nil); code != 200 {
			t.Fatalf("warmup query: code %d", code)
		}
	}
	var m metricsBody
	if code := getJSON(t, ts.URL+"/metrics", &m); code != 200 {
		t.Fatalf("metrics: code %d", code)
	}
	if m.QueriesServed < 3 {
		t.Errorf("queries_served = %d, want >= 3", m.QueriesServed)
	}
	if m.CacheHits < 2 || m.CacheHitRatio <= 0 {
		t.Errorf("cache hits %d ratio %g, want repeat queries cached", m.CacheHits, m.CacheHitRatio)
	}
	if m.Workers < 1 || m.QueueCap < 1 {
		t.Errorf("pool shape: %+v", m)
	}
	if m.P50Micros <= 0 {
		t.Errorf("p50 = %d, want positive after executed queries", m.P50Micros)
	}
	if m.Disk != nil {
		t.Errorf("disk metrics present for in-memory graph")
	}
}

// TestQueryTimeout maps the pool deadline onto 504.
func TestQueryTimeout(t *testing.T) {
	ts, _ := newTestServerCfg(t, Config{Timeout: time.Nanosecond, CacheEntries: -1})
	var e errorBody
	if code := getJSON(t, ts.URL+"/topk?q=5&k=3", &e); code != http.StatusGatewayTimeout {
		t.Fatalf("code %d, want 504", code)
	}
	if e.Error == "" {
		t.Fatal("empty error body")
	}
}

func TestSerializedMode(t *testing.T) {
	ts := newTestServer(t, true)
	var body topKBody
	if code := getJSON(t, ts.URL+"/topk?q=5&k=3", &body); code != 200 {
		t.Fatalf("code %d", code)
	}
	if len(body.Results) != 3 {
		t.Fatalf("results %d", len(body.Results))
	}
}
