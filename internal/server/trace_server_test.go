package server

import (
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"testing"
	"time"

	"flos/internal/obs"
	"flos/internal/obs/trace"
)

// traceConfig returns a Config with span tracing on at the given head rate,
// plus the flight recorder the join tests need.
func traceConfig(headRate float64, slow time.Duration) Config {
	return Config{
		Recorder: obs.NewFlightRecorder(obs.RecorderConfig{Size: 64, SlowLatency: slow}),
		Tracer:   trace.New(trace.Config{HeadRate: headRate, SlowLatency: slow}),
	}
}

func doGet(t *testing.T, url string, hdr map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp
}

// TestTraceparentPropagation: a client traceparent is continued — the
// response echoes the same trace ID with the server's boundary span — and
// the retained trace nests the serving-layer spans under that client parent.
func TestTraceparentPropagation(t *testing.T) {
	ts, srv := newTestServerCfg(t, traceConfig(trace.HeadAll, -1))
	clientTID := trace.NewID()
	clientSID := trace.NewSpanID()
	inbound := trace.TraceParent{Trace: clientTID, Span: clientSID, Sampled: true}.String()

	resp := doGet(t, ts.URL+"/topk?q=100&k=5&measure=rwr", map[string]string{trace.Header: inbound})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("topk = %d", resp.StatusCode)
	}
	echoed := resp.Header.Get(trace.Header)
	out, err := trace.ParseTraceparent(echoed)
	if err != nil {
		t.Fatalf("response traceparent %q does not parse: %v", echoed, err)
	}
	if out.Trace != clientTID {
		t.Fatalf("response trace ID %s, want the client's %s continued", out.Trace, clientTID)
	}
	if out.Span == clientSID {
		t.Fatal("response parent span is the client's own — server minted no boundary span")
	}
	if !out.Sampled {
		t.Fatal("client's sampled flag not honored")
	}

	var detail struct {
		TraceID string            `json:"trace_id"`
		Root    string            `json:"root"`
		Sampled string            `json:"sampled"`
		Tree    []*trace.SpanNode `json:"tree"`
	}
	if code := getJSON(t, ts.URL+"/debug/flos/traces?id="+clientTID.String(), &detail); code != http.StatusOK {
		t.Fatalf("traces?id = %d", code)
	}
	if detail.Root != "GET /topk" || detail.Sampled != "head" {
		t.Fatalf("trace = root %q sampled %q", detail.Root, detail.Sampled)
	}
	if len(detail.Tree) != 1 || detail.Tree[0].Span.Name != "GET /topk" {
		t.Fatalf("tree roots = %+v, want the boundary span", detail.Tree)
	}
	if detail.Tree[0].Span.Parent != clientSID.String() {
		t.Fatalf("boundary span parent %q, want the client span %s", detail.Tree[0].Span.Parent, clientSID)
	}
	names := map[string]bool{}
	var walk func(ns []*trace.SpanNode)
	walk = func(ns []*trace.SpanNode) {
		for _, n := range ns {
			names[n.Span.Name] = true
			walk(n.Children)
		}
	}
	walk(detail.Tree)
	for _, want := range []string{"qserve.queue.wait", "qserve.cache.lookup", "qserve.execute"} {
		if !names[want] {
			t.Errorf("trace missing span %q (have %v)", want, names)
		}
	}

	// A no-header request mints a fresh trace and still echoes traceparent.
	resp2 := doGet(t, ts.URL+"/unified?q=42&k=4", nil)
	out2, err := trace.ParseTraceparent(resp2.Header.Get(trace.Header))
	if err != nil || out2.Trace == clientTID {
		t.Fatalf("fresh request traceparent %q err %v", resp2.Header.Get(trace.Header), err)
	}
	if srv.tracer.Get(out2.Trace.String()) == nil {
		t.Fatal("fresh trace not retained at HeadAll")
	}
}

// TestTraceparentBatchSlots: a traced batch records one qserve.slot span per
// member query.
func TestTraceparentBatchSlots(t *testing.T) {
	ts, srv := newTestServerCfg(t, traceConfig(trace.HeadAll, -1))
	body := `{"queries":[5,9,14],"k":4,"measure":"php"}`
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/topk/batch", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch = %d", resp.StatusCode)
	}
	tp, err := trace.ParseTraceparent(resp.Header.Get(trace.Header))
	if err != nil {
		t.Fatal(err)
	}
	kept := srv.tracer.Get(tp.Trace.String())
	if kept == nil {
		t.Fatal("batch trace not retained")
	}
	slots := 0
	for _, sp := range kept.Spans {
		if sp.Name == "qserve.slot" {
			slots++
		}
	}
	if slots != 3 {
		t.Fatalf("%d qserve.slot spans, want 3", slots)
	}
}

// TestTraceparentMalformed: a malformed traceparent is the client's error —
// every endpoint answers the same structured 400, tracer on or off.
func TestTraceparentMalformed(t *testing.T) {
	bad := []string{
		"zz-00000000000000000000000000000001-0000000000000001-01", // bad version hex
		"ff-00000000000000000000000000000001-0000000000000001-01", // version ff
		"00-00000000000000000000000000000000-0000000000000001-01", // zero trace
		"00-00000000000000000000000000000001-0000000000000000-01", // zero span
		"00-ABCDEF00000000000000000000000001-0000000000000001-01", // uppercase
		"00-0000000000000001-0000000000000001-01",                 // short trace
		"00-00000000000000000000000000000001-0000000000000001",    // 3 fields
		"garbage",
	}
	for _, tracerOn := range []bool{true, false} {
		cfg := Config{}
		if tracerOn {
			cfg = traceConfig(trace.HeadAll, -1)
		}
		ts, _ := newTestServerCfg(t, cfg)
		for _, ep := range []string{"/topk?q=100&k=5", "/unified?q=42&k=4", "/healthz"} {
			for _, v := range bad {
				resp := doGet(t, ts.URL+ep, map[string]string{trace.Header: v})
				if resp.StatusCode != http.StatusBadRequest {
					t.Errorf("tracer=%v %s traceparent %q: code %d, want 400", tracerOn, ep, v, resp.StatusCode)
				}
				if resp.Header.Get("X-Request-ID") == "" {
					t.Errorf("400 response lost its X-Request-ID")
				}
			}
		}
	}
}

// TestTraceparentEchoTracerOff: with tracing disabled a valid client header
// still round-trips verbatim, and /debug/flos/traces answers 404.
func TestTraceparentEchoTracerOff(t *testing.T) {
	ts := newTestServer(t, false)
	inbound := trace.TraceParent{Trace: trace.NewID(), Span: trace.NewSpanID(), Sampled: true}.String()
	resp := doGet(t, ts.URL+"/topk?q=100&k=5", map[string]string{trace.Header: inbound})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("topk = %d", resp.StatusCode)
	}
	if got := resp.Header.Get(trace.Header); got != inbound {
		t.Fatalf("echo %q, want the inbound value %q", got, inbound)
	}
	// No header in → no header out when the tracer is off.
	resp2 := doGet(t, ts.URL+"/topk?q=100&k=5", nil)
	if got := resp2.Header.Get(trace.Header); got != "" {
		t.Fatalf("tracer off minted a traceparent %q", got)
	}
	if code := getJSON(t, ts.URL+"/debug/flos/traces", nil); code != http.StatusNotFound {
		t.Fatalf("traces endpoint = %d with tracing off, want 404", code)
	}
}

// TestTracesEndpointList covers the list view, its counters, and the error
// paths (?id= miss, bad n).
func TestTracesEndpointList(t *testing.T) {
	ts, _ := newTestServerCfg(t, traceConfig(trace.HeadAll, -1))
	for i := 0; i < 3; i++ {
		if resp := doGet(t, fmt.Sprintf("%s/topk?q=%d&k=5", ts.URL, 10+i), nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("topk = %d", resp.StatusCode)
		}
	}
	var list traceListBody
	if code := getJSON(t, ts.URL+"/debug/flos/traces?n=2", &list); code != http.StatusOK {
		t.Fatalf("traces = %d", code)
	}
	if list.Started < 3 || list.KeptHead < 3 {
		t.Fatalf("counters = %+v, want >= 3 started and head-kept", list)
	}
	if len(list.Traces) != 2 {
		t.Fatalf("n=2 returned %d traces", len(list.Traces))
	}
	for _, tr := range list.Traces {
		if tr.TraceID == "" || tr.Root == "" || tr.Spans < 2 || tr.Status != "ok" {
			t.Fatalf("summary = %+v", tr)
		}
	}
	if code := getJSON(t, ts.URL+"/debug/flos/traces?id="+strings.Repeat("0", 31)+"1", nil); code != http.StatusNotFound {
		t.Fatalf("unknown id = %d, want 404", code)
	}
	if code := getJSON(t, ts.URL+"/debug/flos/traces?n=bogus", nil); code != http.StatusBadRequest {
		t.Fatalf("bad n = %d, want 400", code)
	}
}

// TestTraceTailPromotionJoins is the acceptance contract over HTTP: at a 0%
// head rate a slow query's trace is still retrievable as a full span tree,
// and its trace ID appears in the slow-query log, the flight recorder, a
// histogram exemplar, the access log, and the tail-kept Prometheus counter.
func TestTraceTailPromotionJoins(t *testing.T) {
	var buf syncBuffer
	cfg := traceConfig(0, time.Nanosecond) // keep nothing by hash; everything is slow
	cfg.Logger = slog.New(slog.NewJSONHandler(&buf, nil))
	ts, _ := newTestServerCfg(t, cfg)
	const reqID = "trace-join-1"

	resp := doGet(t, ts.URL+"/topk?q=100&k=5&measure=rwr", map[string]string{"X-Request-ID": reqID})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("topk = %d", resp.StatusCode)
	}
	tp, err := trace.ParseTraceparent(resp.Header.Get(trace.Header))
	if err != nil {
		t.Fatal(err)
	}
	if tp.Sampled {
		t.Fatal("head-sampled at rate 0")
	}
	traceID := tp.Trace.String()

	var detail struct {
		Sampled string            `json:"sampled"`
		Status  string            `json:"status"`
		Tree    []*trace.SpanNode `json:"tree"`
	}
	if code := getJSON(t, ts.URL+"/debug/flos/traces?id="+traceID, &detail); code != http.StatusOK {
		t.Fatalf("slow trace not retrievable at head rate 0: %d", code)
	}
	if !strings.HasPrefix(detail.Sampled, "tail:") || detail.Status != "ok" {
		t.Fatalf("trace = sampled %q status %q, want a tail promotion", detail.Sampled, detail.Status)
	}
	if len(detail.Tree) != 1 || len(detail.Tree[0].Children) == 0 {
		t.Fatalf("span tree incomplete: %+v", detail.Tree)
	}

	var slow flightDumpBody
	if code := getJSON(t, ts.URL+"/debug/flos/slow", &slow); code != http.StatusOK {
		t.Fatalf("slow = %d", code)
	}
	if len(slow.Records) != 1 || slow.Records[0].TraceID != traceID {
		t.Fatalf("slow log trace_id = %+v, want %s", slow.Records, traceID)
	}
	var ring flightDumpBody
	if code := getJSON(t, ts.URL+"/debug/flos/flightrec?n=1", &ring); code != http.StatusOK {
		t.Fatalf("flightrec = %d", code)
	}
	if len(ring.Records) != 1 || ring.Records[0].TraceID != traceID {
		t.Fatal("flight record missing the trace ID")
	}

	var met metricsBody
	if code := getJSON(t, ts.URL+"/metrics?format=json", &met); code != http.StatusOK {
		t.Fatalf("metrics = %d", code)
	}
	found := false
	for _, ex := range met.Exemplars {
		if ex.ID == reqID && ex.TraceID == traceID {
			found = true
		}
	}
	if !found {
		t.Errorf("no exemplar joins request %q to trace %s: %+v", reqID, traceID, met.Exemplars)
	}
	// Every request here — the debug GETs included — exceeds the 1ns slow
	// threshold, so all keeps are tail keeps and none are head keeps.
	if met.Traces == nil || met.Traces.KeptTail < 1 || met.Traces.KeptHead != 0 {
		t.Errorf("trace counters = %+v, want tail keeps only", met.Traces)
	}

	raw, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(raw.Body)
	raw.Body.Close()
	for _, want := range []string{
		`flos_traces_kept_total{sampled="tail"}`,
		`flos_traces_kept_total{sampled="head"} 0`,
		"flos_traces_started_total",
		"flos_traces_dropped_total",
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	if !strings.Contains(buf.String(), traceID) {
		t.Errorf("access log does not carry trace ID %s:\n%s", traceID, buf.String())
	}
}
