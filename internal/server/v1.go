package server

// The versioned /v1 query API: the same engine behind a unified envelope
// that carries the serving mode and the certification block of every answer.
// The unversioned routes stay as deprecated aliases (see deprecated); only
// /v1 accepts the mode/epsilon/deadline parameters.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"flos/internal/core"
	"flos/internal/graph"
	"flos/internal/measure"
	"flos/internal/obs/trace"
	"flos/internal/qserve"
)

// legacyPath pairs one deprecated unversioned route with its /v1 successor,
// advertised in the Link response header per RFC 8594.
type legacyPath struct {
	path      string
	successor string
}

// legacyPaths enumerates the deprecated routes, in the stable order the
// Prometheus exposition emits their counters.
var legacyPaths = []legacyPath{
	{"/topk", "/v1/topk"},
	{"/topk/batch", "/v1/topk/batch"},
	{"/unified", "/v1/unified"},
	{"/graph/edges", "/v1/graph/edges"},
}

// deprecated wraps a legacy handler: behavior is byte-for-byte the old
// contract, but every response carries a Deprecation header pointing at the
// /v1 successor and the hit lands in flos_legacy_requests_total.
func (s *Server) deprecated(path string, h http.HandlerFunc) http.HandlerFunc {
	successor := ""
	for _, lp := range legacyPaths {
		if lp.path == path {
			successor = lp.successor
		}
	}
	ctr := s.legacyReq[path]
	return func(w http.ResponseWriter, r *http.Request) {
		ctr.Add(1)
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", "<"+successor+`>; rel="successor-version"`)
		h(w, r)
	}
}

// servingMode is the parsed mode/epsilon/deadline/kernel tuple of a /v1
// request.
type servingMode struct {
	mode     core.Mode
	epsilon  float64
	deadline time.Duration
	kernel   core.KernelKind
}

// parseServingMode validates the /v1 serving-mode parameters. The deadline
// is clamped (not rejected) at Config.MaxDeadline; an epsilon over
// Config.MaxEpsilon is the client's error and rejected, because silently
// shrinking the budget would change what the response certifies.
func (s *Server) parseServingMode(get func(string) string) (servingMode, error) {
	var sm servingMode
	mode, err := core.ParseMode(get("mode"))
	if err != nil {
		return sm, err
	}
	sm.mode = mode
	if sm.kernel, err = core.ParseKernel(get("kernel")); err != nil {
		return sm, err
	}
	if v := get("epsilon"); v != "" {
		if sm.epsilon, err = strconv.ParseFloat(v, 64); err != nil {
			return sm, fmt.Errorf("bad epsilon: %v", err)
		}
	}
	if sm.epsilon > 0 && sm.epsilon > s.maxEpsilon {
		return sm, fmt.Errorf("epsilon=%g exceeds server cap %g", sm.epsilon, s.maxEpsilon)
	}
	if v := get("deadline"); v != "" {
		if sm.deadline, err = time.ParseDuration(v); err != nil {
			return sm, fmt.Errorf("bad deadline: %v", err)
		}
		if sm.deadline <= 0 {
			return sm, fmt.Errorf("deadline=%v must be positive", sm.deadline)
		}
	}
	if sm.deadline > s.maxDeadline {
		sm.deadline = s.maxDeadline
	}
	return sm, nil
}

// withDeadline applies a client-requested deadline to the request context.
func withDeadline(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, d)
}

// traceIDOf returns the request's trace ID when it ran under span tracing.
func traceIDOf(r *http.Request) string {
	if a, _ := trace.FromContext(r.Context()); a != nil {
		return a.TraceIDString()
	}
	return ""
}

// v1TopKBody is the GET /v1/topk response envelope. Unlike the legacy body
// it always carries the certification block — mode, certified flag, the
// achieved gap, and per-node score intervals for the returned k.
type v1TopKBody struct {
	APIVersion    string             `json:"api_version"`
	Query         graph.NodeID       `json:"query"`
	Measure       string             `json:"measure"`
	K             int                `json:"k"`
	Exact         bool               `json:"exact"`
	Cached        bool               `json:"cached"`
	Visited       int                `json:"visited"`
	Iterations    int                `json:"iterations"`
	Epoch         uint64             `json:"epoch,omitempty"`
	TraceID       string             `json:"trace_id,omitempty"`
	ElapsedUS     int64              `json:"elapsed_us"`
	Results       []rankedBody       `json:"results"`
	Certification core.Certification `json:"certification"`
	Trace         []core.IterStats   `json:"trace,omitempty"`
}

func (s *Server) handleV1TopK(w http.ResponseWriter, r *http.Request) {
	q, k, p, tighten, wantTrace, err := s.parseCommon(r)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	kind, err := parseMeasure(r.URL.Query().Get("measure"))
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	sm, err := s.parseServingMode(r.URL.Query().Get)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	opt := core.Options{
		K: k, Measure: kind, Params: p, Tighten: tighten, TieEps: 1e-9,
		Mode: sm.mode, Epsilon: sm.epsilon, Kernel: sm.kernel,
	}
	if err := opt.Validate(); err != nil {
		badRequest(w, "%v", err)
		return
	}
	var tc *core.TraceCollector
	if wantTrace {
		tc = &core.TraceCollector{}
		opt.Tracer = tc
	}
	ctx, cancel := withDeadline(r.Context(), sm.deadline)
	defer cancel()
	start := time.Now()
	resp, err := s.pool.Do(ctx, qserve.Request{ID: w.Header().Get("X-Request-ID"), Query: q, Opt: opt})
	if err != nil {
		writeQueryError(w, err)
		return
	}
	res := resp.TopK
	body := v1TopKBody{
		APIVersion:    "v1",
		Query:         q,
		Measure:       kind.String(),
		K:             k,
		Exact:         res.Exact,
		Cached:        resp.CacheHit,
		Visited:       res.Visited,
		Iterations:    res.Iterations,
		Epoch:         resp.Epoch,
		TraceID:       traceIDOf(r),
		ElapsedUS:     time.Since(start).Microseconds(),
		Results:       make([]rankedBody, 0, len(res.TopK)),
		Certification: res.Certification,
	}
	if tc != nil {
		body.Trace = tc.Iters
	}
	for _, rk := range res.TopK {
		body.Results = append(body.Results, rankedBody{Node: rk.Node, Score: rk.Score})
	}
	writeJSON(w, http.StatusOK, body)
}

// v1UnifiedBody is the GET /v1/unified envelope: both family rankings, each
// with its own certification block (one family can certify before the
// other, and under anytime interruption they can differ).
type v1UnifiedBody struct {
	APIVersion string             `json:"api_version"`
	Query      graph.NodeID       `json:"query"`
	K          int                `json:"k"`
	Exact      bool               `json:"exact"`
	Cached     bool               `json:"cached"`
	Visited    int                `json:"visited"`
	Iterations int                `json:"iterations"`
	Epoch      uint64             `json:"epoch,omitempty"`
	TraceID    string             `json:"trace_id,omitempty"`
	ElapsedUS  int64              `json:"elapsed_us"`
	PHPFamily  []rankedBody       `json:"php_family"`
	RWR        []rankedBody       `json:"rwr"`
	PHPCert    core.Certification `json:"php_certification"`
	RWRCert    core.Certification `json:"rwr_certification"`
	Trace      []core.IterStats   `json:"trace,omitempty"`
}

func (s *Server) handleV1Unified(w http.ResponseWriter, r *http.Request) {
	q, k, p, tighten, wantTrace, err := s.parseCommon(r)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	sm, err := s.parseServingMode(r.URL.Query().Get)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	opt := core.Options{
		K: k, Measure: measure.PHP, Params: p, Tighten: tighten, TieEps: 1e-9,
		Mode: sm.mode, Epsilon: sm.epsilon, Kernel: sm.kernel,
	}
	if err := opt.Validate(); err != nil {
		badRequest(w, "%v", err)
		return
	}
	var tc *core.TraceCollector
	if wantTrace {
		tc = &core.TraceCollector{}
		opt.Tracer = tc
	}
	ctx, cancel := withDeadline(r.Context(), sm.deadline)
	defer cancel()
	start := time.Now()
	resp, err := s.pool.Do(ctx, qserve.Request{ID: w.Header().Get("X-Request-ID"), Query: q, Opt: opt, Unified: true})
	if err != nil {
		writeQueryError(w, err)
		return
	}
	res := resp.Unified
	body := v1UnifiedBody{
		APIVersion: "v1",
		Query:      q,
		K:          k,
		Exact:      res.Exact,
		Cached:     resp.CacheHit,
		Visited:    res.Visited,
		Iterations: res.Iterations,
		Epoch:      resp.Epoch,
		TraceID:    traceIDOf(r),
		ElapsedUS:  time.Since(start).Microseconds(),
		PHPCert:    res.PHPCert,
		RWRCert:    res.RWRCert,
	}
	if tc != nil {
		body.Trace = tc.Iters
	}
	for _, rk := range res.PHPFamily {
		body.PHPFamily = append(body.PHPFamily, rankedBody{Node: rk.Node, Score: rk.Score})
	}
	for _, rk := range res.RWR {
		body.RWR = append(body.RWR, rankedBody{Node: rk.Node, Score: rk.Score})
	}
	writeJSON(w, http.StatusOK, body)
}

// v1BatchRequestBody is the POST /v1/topk/batch payload: the legacy fields
// plus the serving mode shared by every member.
type v1BatchRequestBody struct {
	Queries  []graph.NodeID `json:"queries"`
	K        int            `json:"k"`
	Measure  string         `json:"measure"`
	Mode     string         `json:"mode,omitempty"`
	Epsilon  float64        `json:"epsilon,omitempty"`
	Deadline string         `json:"deadline,omitempty"`
	Kernel   string         `json:"kernel,omitempty"`
	C        *float64       `json:"c,omitempty"`
	L        *int           `json:"L,omitempty"`
	Tau      *float64       `json:"tau,omitempty"`
	Tighten  *bool          `json:"tighten,omitempty"`
}

// v1BatchItemBody is one query's slot: results plus its certification, or
// that query's error.
type v1BatchItemBody struct {
	Query         graph.NodeID        `json:"query"`
	Error         string              `json:"error,omitempty"`
	Exact         bool                `json:"exact,omitempty"`
	Cached        bool                `json:"cached,omitempty"`
	Visited       int                 `json:"visited,omitempty"`
	Results       []rankedBody        `json:"results,omitempty"`
	Certification *core.Certification `json:"certification,omitempty"`
}

type v1BatchBody struct {
	APIVersion string            `json:"api_version"`
	Measure    string            `json:"measure"`
	K          int               `json:"k"`
	Mode       string            `json:"mode"`
	Count      int               `json:"count"`
	Errors     int               `json:"errors"`
	TraceID    string            `json:"trace_id,omitempty"`
	ElapsedUS  int64             `json:"elapsed_us"`
	Results    []v1BatchItemBody `json:"results"`
}

func (s *Server) handleV1TopKBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST required"})
		return
	}
	var req v1BatchRequestBody
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		badRequest(w, "bad JSON body: %v", err)
		return
	}
	if len(req.Queries) == 0 {
		badRequest(w, "queries must be non-empty")
		return
	}
	if len(req.Queries) > s.maxBatch {
		badRequest(w, "batch of %d queries exceeds limit %d", len(req.Queries), s.maxBatch)
		return
	}
	k := req.K
	if k == 0 {
		k = 10
	}
	if k < 1 || k > s.maxK {
		badRequest(w, "k=%d outside [1,%d]", k, s.maxK)
		return
	}
	kind, err := parseMeasure(req.Measure)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	sm, err := s.parseServingMode(func(key string) string {
		switch key {
		case "mode":
			return req.Mode
		case "epsilon":
			if req.Epsilon == 0 {
				return ""
			}
			return strconv.FormatFloat(req.Epsilon, 'g', -1, 64)
		case "deadline":
			return req.Deadline
		case "kernel":
			return req.Kernel
		}
		return ""
	})
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	p := s.defaults
	if req.C != nil {
		p.C = *req.C
	}
	if req.L != nil {
		p.L = *req.L
	}
	if req.Tau != nil {
		p.Tau = *req.Tau
	}
	tighten := true
	if req.Tighten != nil {
		tighten = *req.Tighten
	}
	opt := core.Options{
		K: k, Measure: kind, Params: p, Tighten: tighten, TieEps: 1e-9,
		Mode: sm.mode, Epsilon: sm.epsilon, Kernel: sm.kernel,
	}
	if err := opt.Validate(); err != nil {
		badRequest(w, "%v", err)
		return
	}

	id := w.Header().Get("X-Request-ID")
	reqs := make([]qserve.Request, len(req.Queries))
	for i, q := range req.Queries {
		reqs[i] = qserve.Request{ID: fmt.Sprintf("%s-%d", id, i), Query: q, Opt: opt}
	}
	ctx, cancel := withDeadline(r.Context(), sm.deadline)
	defer cancel()
	start := time.Now()
	items := s.pool.DoBatch(ctx, reqs)
	body := v1BatchBody{
		APIVersion: "v1",
		Measure:    kind.String(),
		K:          k,
		Mode:       sm.mode.String(),
		Count:      len(items),
		TraceID:    traceIDOf(r),
		ElapsedUS:  time.Since(start).Microseconds(),
		Results:    make([]v1BatchItemBody, len(items)),
	}
	for i, it := range items {
		slot := v1BatchItemBody{Query: req.Queries[i]}
		if it.Err != nil {
			slot.Error = it.Err.Error()
			body.Errors++
		} else {
			res := it.Resp.TopK
			slot.Exact = res.Exact
			slot.Cached = it.Resp.CacheHit
			slot.Visited = res.Visited
			cert := res.Certification
			slot.Certification = &cert
			for _, rk := range res.TopK {
				slot.Results = append(slot.Results, rankedBody{Node: rk.Node, Score: rk.Score})
			}
		}
		body.Results[i] = slot
	}
	writeJSON(w, http.StatusOK, body)
}
