package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"testing"
	"time"

	"flos/internal/core"
)

// TestV1TopKEnvelope checks the versioned envelope across every measure:
// api_version, the certification block (certified exact, gap within TieEps,
// bounds parallel to the results), and the legacy-compatible counters.
func TestV1TopKEnvelope(t *testing.T) {
	ts := newTestServer(t, false)
	for _, m := range []string{"php", "ei", "dht", "tht", "rwr"} {
		var body v1TopKBody
		url := fmt.Sprintf("%s/v1/topk?q=100&k=5&measure=%s", ts.URL, m)
		if code := getJSON(t, url, &body); code != 200 {
			t.Fatalf("%s: code %d", m, code)
		}
		if body.APIVersion != "v1" {
			t.Fatalf("%s: api_version %q", m, body.APIVersion)
		}
		if len(body.Results) != 5 || !body.Exact {
			t.Fatalf("%s: %+v", m, body)
		}
		c := body.Certification
		if c.Mode != core.ModeExact || !c.Certified {
			t.Fatalf("%s: certification %+v", m, c)
		}
		if !c.GapValid || c.Gap < 0 || c.Gap > 1e-9 {
			t.Fatalf("%s: exact gap %g (valid=%v)", m, c.Gap, c.GapValid)
		}
		if len(c.Bounds) != len(body.Results) {
			t.Fatalf("%s: %d bounds for %d results", m, len(c.Bounds), len(body.Results))
		}
		for i, b := range c.Bounds {
			if b.Node != body.Results[i].Node {
				t.Fatalf("%s: bounds[%d] node %d != results[%d] node %d", m, i, b.Node, i, body.Results[i].Node)
			}
			if b.Lower > b.Upper+1e-9 {
				t.Fatalf("%s: inverted interval [%g, %g]", m, b.Lower, b.Upper)
			}
		}
	}
}

// TestV1TopKKernel checks the bound-solver kernel parameter: every kernel
// answers 200 with a certified exact result, and the top-k node set is the
// same across kernels (scores may differ in low-order bits; the set and the
// flags may not).
func TestV1TopKKernel(t *testing.T) {
	ts := newTestServer(t, false)
	nodeSets := make(map[string][]int64)
	for _, kk := range []string{"", "auto", "serial", "parallel", "staged"} {
		var body v1TopKBody
		url := ts.URL + "/v1/topk?q=100&k=5&measure=php&kernel=" + kk
		if code := getJSON(t, url, &body); code != 200 {
			t.Fatalf("kernel=%q: code %d", kk, code)
		}
		if !body.Exact || !body.Certification.Certified {
			t.Fatalf("kernel=%q: not certified exact: %+v", kk, body.Certification)
		}
		var nodes []int64
		for _, r := range body.Results {
			nodes = append(nodes, int64(r.Node))
		}
		sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
		nodeSets[kk] = nodes
	}
	for kk, nodes := range nodeSets {
		if fmt.Sprint(nodes) != fmt.Sprint(nodeSets["serial"]) {
			t.Fatalf("kernel=%q returned node set %v, serial returned %v", kk, nodes, nodeSets["serial"])
		}
	}
}

// TestV1TopKEpsilon checks the ε-certified mode over HTTP: 200 with a
// certified block whose achieved gap is within the requested budget.
func TestV1TopKEpsilon(t *testing.T) {
	ts := newTestServer(t, false)
	var body v1TopKBody
	url := ts.URL + "/v1/topk?q=100&k=10&measure=rwr&mode=epsilon&epsilon=1e-3"
	if code := getJSON(t, url, &body); code != 200 {
		t.Fatalf("code %d", code)
	}
	c := body.Certification
	if c.Mode != core.ModeEpsilon || c.Epsilon != 1e-3 {
		t.Fatalf("certification mode/ε: %+v", c)
	}
	if !c.Certified || c.Gap > 1e-3 {
		t.Fatalf("ε answer not certified within budget: %+v", c)
	}
}

// TestV1TopKAnytimeDeadline is the acceptance path: an anytime query whose
// deadline expires mid-search answers HTTP 200 with the partial top-k and
// Certified=false — not 504.
func TestV1TopKAnytimeDeadline(t *testing.T) {
	ts := newTestServer(t, false)
	var body v1TopKBody
	url := ts.URL + "/v1/topk?q=100&k=10&measure=rwr&mode=anytime&deadline=1ns"
	if code := getJSON(t, url, &body); code != 200 {
		t.Fatalf("code %d, want 200", code)
	}
	c := body.Certification
	if c.Mode != core.ModeAnytime {
		t.Fatalf("mode %v, want anytime", c.Mode)
	}
	if c.Certified {
		t.Fatalf("deadline-starved anytime answer claims certified: %+v", c)
	}
	if body.Exact {
		t.Fatalf("deadline-starved anytime answer claims exact")
	}

	// The same starved request in exact mode keeps the legacy 504 contract.
	resp, err := http.Get(ts.URL + "/v1/topk?q=100&k=10&measure=rwr&deadline=1ns")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("exact-mode starved query: code %d, want 504", resp.StatusCode)
	}
}

// TestV1DeadlineClamp checks that a client deadline above Config.MaxDeadline
// is clamped, not rejected: with a 1ns server cap, even a generous client
// deadline yields an uncertified anytime partial.
func TestV1DeadlineClamp(t *testing.T) {
	ts, _ := newTestServerCfg(t, Config{MaxDeadline: time.Nanosecond})
	var body v1TopKBody
	url := ts.URL + "/v1/topk?q=100&k=10&measure=rwr&mode=anytime&deadline=10h"
	if code := getJSON(t, url, &body); code != 200 {
		t.Fatalf("code %d", code)
	}
	if body.Certification.Certified {
		t.Fatalf("10h deadline was not clamped to the 1ns server cap")
	}
}

// TestV1Unified checks the unified envelope's per-family certifications.
func TestV1Unified(t *testing.T) {
	ts := newTestServer(t, false)
	var body v1UnifiedBody
	if code := getJSON(t, ts.URL+"/v1/unified?q=42&k=4", &body); code != 200 {
		t.Fatalf("code %d", code)
	}
	if body.APIVersion != "v1" || len(body.PHPFamily) != 4 || len(body.RWR) != 4 {
		t.Fatalf("body = %+v", body)
	}
	if !body.PHPCert.Certified || !body.RWRCert.Certified {
		t.Fatalf("family certifications: php=%+v rwr=%+v", body.PHPCert, body.RWRCert)
	}
	if len(body.PHPCert.Bounds) != 4 || len(body.RWRCert.Bounds) != 4 {
		t.Fatalf("bounds: php=%d rwr=%d", len(body.PHPCert.Bounds), len(body.RWRCert.Bounds))
	}
}

// TestV1Batch checks the batch envelope: shared serving mode, per-slot
// certifications, and per-slot errors that do not fail the batch.
func TestV1Batch(t *testing.T) {
	ts := newTestServer(t, false)
	payload := `{"queries":[1,2,999999],"k":3,"measure":"rwr","mode":"epsilon","epsilon":0.001}`
	resp, err := http.Post(ts.URL+"/v1/topk/batch", "application/json", bytes.NewReader([]byte(payload)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("code %d", resp.StatusCode)
	}
	var body v1BatchBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.APIVersion != "v1" || body.Mode != "epsilon" || body.Count != 3 || body.Errors != 1 {
		t.Fatalf("body = %+v", body)
	}
	for i := 0; i < 2; i++ {
		slot := body.Results[i]
		if slot.Error != "" || slot.Certification == nil {
			t.Fatalf("slot %d: %+v", i, slot)
		}
		if !slot.Certification.Certified || slot.Certification.Gap > 0.001 {
			t.Fatalf("slot %d certification: %+v", i, slot.Certification)
		}
	}
	if body.Results[2].Error == "" || body.Results[2].Certification != nil {
		t.Fatalf("out-of-range slot: %+v", body.Results[2])
	}
}

// TestV1BadRequests checks the serving-mode validation surface.
func TestV1BadRequests(t *testing.T) {
	ts := newTestServer(t, false)
	cases := []string{
		"/v1/topk?q=1&mode=bogus",                 // unknown mode
		"/v1/topk?q=1&mode=epsilon&epsilon=2",     // over the default 1.0 cap
		"/v1/topk?q=1&mode=epsilon&epsilon=-0.5",  // negative budget
		"/v1/topk?q=1&mode=epsilon&epsilon=x",     // unparsable budget
		"/v1/topk?q=1&epsilon=1e-3",               // epsilon without ModeEpsilon
		"/v1/topk?q=1&mode=anytime&deadline=-1s",  // non-positive deadline
		"/v1/topk?q=1&mode=anytime&deadline=soon", // unparsable deadline
		"/v1/topk?q=1&kernel=bogus",               // unknown bound-solver kernel
		"/v1/unified?q=1&mode=epsilon&epsilon=2",  // same checks on /v1/unified
		"/v1/unified?q=1&kernel=bogus",
		"/v1/topk?q=999999", // legacy validation still applies
		"/v1/topk?q=1&k=0",
	}
	for _, c := range cases {
		var e errorBody
		if code := getJSON(t, ts.URL+c, &e); code != http.StatusBadRequest {
			t.Errorf("%s: code %d, want 400", c, code)
		}
		if e.Error == "" {
			t.Errorf("%s: empty error body", c)
		}
	}

	// A negative MaxEpsilon disables ε serving entirely without breaking
	// exact requests.
	ts2, _ := newTestServerCfg(t, Config{MaxEpsilon: -1})
	var e errorBody
	if code := getJSON(t, ts2.URL+"/v1/topk?q=1&mode=epsilon&epsilon=1e-6", &e); code != http.StatusBadRequest {
		t.Errorf("ε on ε-disabled server: code %d, want 400", code)
	}
	if code := getJSON(t, ts2.URL+"/v1/topk?q=1&k=3", nil); code != 200 {
		t.Errorf("exact on ε-disabled server: code %d, want 200", code)
	}
}

// TestLegacyDeprecation checks the alias contract: the unversioned routes
// answer exactly as before, but every response carries the Deprecation and
// successor-version Link headers and the hit lands in
// flos_legacy_requests_total.
func TestLegacyDeprecation(t *testing.T) {
	ts := newTestServer(t, false)
	resp, err := http.Get(ts.URL + "/topk?q=100&k=5&measure=rwr")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("legacy /topk: code %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Deprecation"); got != "true" {
		t.Fatalf("Deprecation header %q, want \"true\"", got)
	}
	if link := resp.Header.Get("Link"); !strings.Contains(link, "/v1/topk") || !strings.Contains(link, `rel="successor-version"`) {
		t.Fatalf("Link header %q lacks the successor pointer", link)
	}
	// The legacy body is unchanged: no v1-only fields leak in.
	var fields map[string]any
	if err := json.Unmarshal(raw, &fields); err != nil {
		t.Fatal(err)
	}
	for _, banned := range []string{"api_version", "certification"} {
		if _, ok := fields[banned]; ok {
			t.Fatalf("legacy /topk body grew a %q field: %s", banned, raw)
		}
	}
	// /v1 responses carry no deprecation headers.
	resp, err = http.Get(ts.URL + "/v1/topk?q=100&k=5&measure=rwr")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("Deprecation") != "" {
		t.Fatalf("/v1/topk carries a Deprecation header")
	}

	// The legacy hit shows up in both metric formats.
	var mb metricsBody
	if code := getJSON(t, ts.URL+"/metrics?format=json", &mb); code != 200 {
		t.Fatalf("metrics code %d", code)
	}
	if mb.LegacyRequests["/topk"] != 1 {
		t.Fatalf("legacy_requests = %v, want /topk: 1", mb.LegacyRequests)
	}
	promResp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, err := io.ReadAll(promResp.Body)
	promResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(prom), `flos_legacy_requests_total{endpoint="/topk"} 1`) {
		t.Fatalf("prometheus exposition lacks the legacy counter:\n%s", prom)
	}
	if !strings.Contains(string(prom), `flos_legacy_requests_total{endpoint="/unified"} 0`) {
		t.Fatalf("prometheus exposition should emit zero-valued legacy counters")
	}
}

// TestModeJSONRoundTrip pins the wire spelling of the mode enum.
func TestModeJSONRoundTrip(t *testing.T) {
	for _, m := range []core.Mode{core.ModeExact, core.ModeEpsilon, core.ModeAnytime} {
		b, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		if want := `"` + m.String() + `"`; string(b) != want {
			t.Fatalf("marshal %v = %s, want %s", m, b, want)
		}
		var back core.Mode
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		if back != m {
			t.Fatalf("round trip %v -> %v", m, back)
		}
	}
	var m core.Mode
	if err := json.Unmarshal([]byte(`"warp"`), &m); err == nil {
		t.Fatal("unknown mode unmarshaled without error")
	}
}
