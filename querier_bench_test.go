package flos

// Benchmarks for the session API: the cold/warm pair quantifies what a
// reusable Querier saves over one-shot TopK on the same workload (run with
// -benchmem; the allocs/op column is the headline), and the batch pair
// compares per-query round trips against one Batch call. results/batch.md
// records a reference run.

import (
	"context"
	"fmt"
	"testing"

	"flos/internal/gen"
	"flos/internal/graph"
)

func benchCommunity(b *testing.B) *graph.MemGraph {
	b.Helper()
	g, err := gen.Community(50000, 250000, gen.CommunityParamsForDensity(10), 1)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func benchWorkload(g *graph.MemGraph, n int) []graph.NodeID {
	qs := make([]graph.NodeID, n)
	for i := range qs {
		qs[i] = graph.NodeID((i * 7919) % g.NumNodes())
	}
	return qs
}

// BenchmarkQuerierReuse is the headline cold-vs-warm comparison: PHP top-20
// on the community stand-in, one query per iteration over a fixed workload.
// "cold" rebuilds every engine structure per call (plain TopK); "warm"
// answers through one Querier whose pooled workspace keeps them across
// queries.
func BenchmarkQuerierReuse(b *testing.B) {
	g := benchCommunity(b)
	opt := DefaultOptions(PHP, 20)
	queries := benchWorkload(g, 64)

	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := TopK(g, queries[i%len(queries)], opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		qr, err := NewQuerier(g, opt)
		if err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		for _, q := range queries { // prime the pooled workspace
			if _, err := qr.TopK(ctx, q); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := qr.TopK(ctx, queries[i%len(queries)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkQuerierBatch compares answering a 64-query workload with
// sequential warm calls against one Batch fan-out, at several parallelism
// levels. Each iteration answers the whole workload; divide ns/op by 64 for
// per-query time.
func BenchmarkQuerierBatch(b *testing.B) {
	g := benchCommunity(b)
	opt := DefaultOptions(PHP, 20)
	queries := benchWorkload(g, 64)
	ctx := context.Background()

	b.Run("sequential", func(b *testing.B) {
		qr, err := NewQuerier(g, opt)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, q := range queries {
				if _, err := qr.TopK(ctx, q); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	for _, par := range []int{2, 4, 8} {
		par := par
		b.Run(fmt.Sprintf("batch-par=%d", par), func(b *testing.B) {
			qr, err := NewQuerier(g, opt)
			if err != nil {
				b.Fatal(err)
			}
			qr.Parallelism = par
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, item := range qr.Batch(ctx, queries) {
					if item.Err != nil {
						b.Fatal(item.Err)
					}
				}
			}
		})
	}
}
