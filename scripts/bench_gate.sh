#!/usr/bin/env bash
# bench_gate.sh — gate a CI job on one numeric metric in a BENCH_*.json file.
#
# Usage: bench_gate.sh <json> <metric> <threshold> [ge|le]
#
#   <json>       path to a flosbench-written BENCH_*.json artifact
#   <metric>     top-level key holding a number (or true/false, compared as 1/0)
#   <threshold>  the gate value
#   ge|le        pass when metric >= threshold (default) or <= threshold
#
# Every benchmark gate in ci.yml goes through this script so the extraction
# and comparison logic exists exactly once. POSIX tools only (sed + awk): the
# values flosbench writes are top-level `"key": value` pairs on their own
# indented lines, which is all the extraction relies on.
set -eu

if [ $# -lt 3 ] || [ $# -gt 4 ]; then
    echo "usage: $0 <json> <metric> <threshold> [ge|le]" >&2
    exit 2
fi
json=$1
metric=$2
threshold=$3
dir=${4:-ge}

case "$dir" in
ge | le) ;;
*)
    echo "bench_gate: direction must be ge or le, got '$dir'" >&2
    exit 2
    ;;
esac
[ -f "$json" ] || {
    echo "bench_gate: no such file: $json" >&2
    exit 1
}

value=$(sed -n "s/^[[:space:]]*\"$metric\":[[:space:]]*\([0-9.eE+-]*\|true\|false\),\{0,1\}[[:space:]]*$/\1/p" "$json" | head -n 1)
case "$value" in
true) value=1 ;;
false) value=0 ;;
"")
    echo "bench_gate: metric '$metric' not found at top level of $json" >&2
    exit 1
    ;;
esac

# Context for the CI log: where the run happened (satellite of the env stamp).
env_line=$(sed -n 's/^[[:space:]]*"\(gomaxprocs\|num_cpu\|go_version\)":[[:space:]]*\(.*\)/\1=\2/p' "$json" | tr -d '",' | tr '\n' ' ')
echo "bench_gate: $json $metric=$value (gate: $dir $threshold) [$env_line]"

awk -v v="$value" -v t="$threshold" -v d="$dir" \
    'BEGIN { exit (d == "ge" ? v >= t : v <= t) ? 0 : 1 }' || {
    echo "bench_gate: FAIL — $metric=$value violates $dir $threshold" >&2
    exit 1
}
