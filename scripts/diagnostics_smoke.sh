#!/usr/bin/env bash
# Diagnostics-plane smoke test (the CI diagnostics-smoke job).
#
# Boots flosd with the flight recorder, slow-query log, SLO tracking, span
# tracing (head rate 0 — only tail promotion retains anything), and
# continuous profiler enabled; fires 200 queries plus an injected slow query
# carrying a known X-Request-ID and W3C traceparent; asserts the query is
# captured in /debug/flos/slow, joinable through its latency-bucket exemplar
# in /metrics?format=json, visible in the flos_slo_* gauges, replayable
# offline with `flos -replay`, and — despite the 0% head rate — retained as a
# tail-promoted span tree at /debug/flos/traces and in the OTLP-JSON export
# file. Along the way it exercises the versioned /v1 API: exact envelope with
# a certification block, ε-certified query with achieved gap <= ε, anytime
# under an expiring deadline answering 200 with certified:false, and the
# legacy routes still answering unchanged but carrying Deprecation headers
# and the flos_legacy_requests_total counter. The cache-analytics plane
# (on by default) is asserted too: /debug/flos/cache serves the result-cache
# snapshot (no page plane — this server holds the graph in memory), the
# flos_result_cache_* lens gauges land in /metrics, and `flos -cachereport`
# renders the saved snapshot offline. Then it runs the recorder- and
# tracing-overhead benchmarks and gates
# both on the <= 2% median target, leaving the machine-readable results in
# BENCH_5.json / BENCH_7.json (override with BENCH_OUT / TRACE_BENCH_OUT).
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="127.0.0.1:18097"
BASE="http://$ADDR"
WORK="$(mktemp -d)"
OUT="${BENCH_OUT:-BENCH_5.json}"
TRACE_OUT="${TRACE_BENCH_OUT:-BENCH_7.json}"
FLOSD_PID=""
trap '[ -n "$FLOSD_PID" ] && kill "$FLOSD_PID" 2>/dev/null; rm -rf "$WORK"' EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

echo "== build =="
go build -o "$WORK/flosgen" ./cmd/flosgen
go build -o "$WORK/flosd" ./cmd/flosd
go build -o "$WORK/flos" ./cmd/flos
go build -o "$WORK/flosbench" ./cmd/flosbench

echo "== generate graph =="
"$WORK/flosgen" -model rmat -n 20000 -m 100000 -seed 1 -format bin -out "$WORK/graph.bin"

echo "== boot flosd with the diagnostics plane on =="
# -slow-latency 1ns promotes every query, which makes the injected slow query
# (fired last, with a client-supplied request ID) deterministically retained
# in the slow log and deterministically the most recent exemplar of its
# latency bucket.
# -trace-sample 0 turns the head sampler fully off: a trace can only survive
# by tail promotion, which is exactly the retention path this smoke asserts.
"$WORK/flosd" -bin "$WORK/graph.bin" -addr "$ADDR" \
  -flightrec 512 -slow-latency 1ns -slow-keep 64 \
  -slo-latency 100ms -cache 64 \
  -trace-ring 512 -trace-sample 0 -trace-export "$WORK/traces.jsonl" \
  -profile-dir "$WORK/profiles" -profile-interval 2s -profile-keep 3 \
  -log-level warn &
FLOSD_PID=$!
up=""
for _ in $(seq 1 50); do
  if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then up=1; break; fi
  sleep 0.2
done
[ -n "$up" ] || fail "flosd did not come up on $ADDR"

echo "== fire 200 queries =="
for i in $(seq 0 199); do
  q=$(( (i * 37) % 20000 ))
  curl -fsS "$BASE/topk?q=$q&k=10&measure=php" >/dev/null
done
curl -fsS "$BASE/unified?q=11&k=5" >/dev/null
curl -fsS -X POST -d '{"queries":[1,2,3],"k":5,"measure":"rwr"}' "$BASE/topk/batch" >/dev/null
curl -fsS "$BASE/topk?q=0&k=10&measure=php" >/dev/null # repeat: result-cache hit

echo "== /v1 envelope carries version and certification =="
curl -fsS "$BASE/v1/topk?q=11&k=10&measure=php" >"$WORK/v1.json"
grep -q '"api_version":"v1"' "$WORK/v1.json" || fail "/v1/topk envelope has no api_version"
grep -q '"certification":{' "$WORK/v1.json" || fail "/v1/topk envelope has no certification block"
grep -q '"mode":"exact"' "$WORK/v1.json" || fail "/v1 exact response does not report mode=exact"
grep -q '"certified":true' "$WORK/v1.json" || fail "/v1 exact response is not certified"

echo "== ε-certified mode stays within its budget =="
curl -fsS "$BASE/v1/topk?q=11&k=10&measure=rwr&mode=epsilon&epsilon=0.001" >"$WORK/v1eps.json"
grep -q '"mode":"epsilon"' "$WORK/v1eps.json" || fail "ε response does not echo its mode"
grep -q '"certified":true' "$WORK/v1eps.json" || fail "ε response is not certified"
gap=$(sed -n 's/.*"certification":{[^}]*"gap":\([0-9.eE+-]*\).*/\1/p' "$WORK/v1eps.json")
[ -n "$gap" ] || fail "ε response reports no achieved gap"
awk -v g="$gap" 'BEGIN { exit !(g <= 0.001) }' || fail "ε achieved gap $gap exceeds the 0.001 budget"

echo "== anytime under an expiring deadline is a 200, not a 504 =="
code=$(curl -s -o "$WORK/v1any.json" -w '%{http_code}' \
  "$BASE/v1/topk?q=123&k=50&measure=rwr&mode=anytime&deadline=1ns")
[ "$code" = "200" ] || fail "anytime under expiring deadline got $code, want 200"
grep -q '"mode":"anytime"' "$WORK/v1any.json" || fail "anytime response does not echo its mode"
grep -q '"certified":false' "$WORK/v1any.json" || fail "anytime partial under 1ns deadline claims certified"

echo "== legacy routes answer unchanged but are marked deprecated =="
curl -fsS -D "$WORK/legacy.headers" "$BASE/topk?q=11&k=10&measure=php" >"$WORK/legacy.json"
grep -qi '^deprecation: true' "$WORK/legacy.headers" || fail "legacy /topk carries no Deprecation header"
grep -qi 'rel="successor-version"' "$WORK/legacy.headers" || fail "legacy /topk Link has no successor-version"
if grep -q '"api_version"' "$WORK/legacy.json"; then
  fail "legacy /topk body grew an api_version field"
fi
curl -fsS -D "$WORK/v1.headers" -o /dev/null "$BASE/v1/topk?q=11&k=10&measure=php"
if grep -qi '^deprecation:' "$WORK/v1.headers"; then
  fail "/v1/topk wrongly carries a Deprecation header"
fi

echo "== inject slow query with a known request ID and traceparent =="
SLOW_ID="smoke-slow-$$"
# A client traceparent with the sampled flag OFF (flags 00): with the head
# sampler also at 0, nothing but tail promotion can keep this trace.
TRACE_ID="$(printf '%032x' "$$")"
curl -fsS -H "X-Request-ID: $SLOW_ID" \
  -H "traceparent: 00-$TRACE_ID-00000000000000aa-00" \
  -D "$WORK/slow.headers" \
  "$BASE/topk?q=123&k=50&measure=rwr" >/dev/null
grep -qi "traceparent: 00-$TRACE_ID-" "$WORK/slow.headers" ||
  fail "response did not echo the client's trace in traceparent"

echo "== malformed traceparent is a structured 400 =="
code=$(curl -s -o /dev/null -w '%{http_code}' -H "traceparent: garbage" "$BASE/topk?q=1&k=5")
[ "$code" = "400" ] || fail "malformed traceparent got $code, want 400"

echo "== slow log captured it =="
curl -fsS "$BASE/debug/flos/slow" >"$WORK/slow.json"
grep -q "\"$SLOW_ID\"" "$WORK/slow.json" || fail "$SLOW_ID not in /debug/flos/slow"
grep -q '"trace":' "$WORK/slow.json" || fail "slow log carries no trajectories"

echo "== request ID is its latency bucket's exemplar =="
curl -fsS "$BASE/metrics?format=json" >"$WORK/metrics.json"
grep -q "\"$SLOW_ID\"" "$WORK/metrics.json" || fail "$SLOW_ID is not a latency-bucket exemplar"

echo "== slow query's trace was tail-promoted at head rate 0 =="
curl -fsS "$BASE/debug/flos/traces?id=$TRACE_ID" >"$WORK/trace.json"
grep -q '"sampled":"tail:' "$WORK/trace.json" || fail "trace $TRACE_ID not tail-promoted"
grep -q '"name":"qserve.execute"' "$WORK/trace.json" || fail "trace has no qserve.execute span"
grep -q '"name":"GET /topk"' "$WORK/trace.json" || fail "trace has no boundary span"
grep -q "\"parent_span_id\":\"00000000000000aa\"" "$WORK/trace.json" ||
  fail "boundary span not parented on the client's span"
curl -fsS "$BASE/debug/flos/traces" | grep -q '"kept_tail":' || fail "trace list has no counters"

echo "== exemplar joins to the trace store =="
grep -q "\"trace_id\":\"$TRACE_ID\"" "$WORK/metrics.json" ||
  fail "no latency exemplar carries trace_id $TRACE_ID"

echo "== slow log record carries the trace ID =="
curl -fsS "$BASE/debug/flos/slow" | grep -q "\"trace_id\":\"$TRACE_ID\"" ||
  fail "slow-log record has no trace_id join key"

echo "== OTLP export file has the trace =="
grep -q "\"traceId\":\"$TRACE_ID\"" "$WORK/traces.jsonl" ||
  fail "trace $TRACE_ID missing from the OTLP export file"

echo "== SLO gauges and recorder counters exposed =="
curl -fsS "$BASE/metrics" >"$WORK/metrics.prom"
for m in 'flos_slo_availability{window="5m"}' 'flos_slo_availability_burn_rate{window="1h"}' \
  'flos_slo_latency_compliance{window="5m"}' 'flos_flightrec_recorded_total' \
  'flos_query_outcomes_total{outcome="hit"}' 'flos_query_outcomes_total{outcome="ok"}' \
  'flos_traces_started_total' 'flos_traces_kept_total{sampled="tail"}' \
  'flos_traces_kept_total{sampled="head"} 0' \
  'flos_legacy_requests_total{endpoint="/topk"}'; do
  grep -qF "$m" "$WORK/metrics.prom" || fail "/metrics missing $m"
done
curl -fsS "$BASE/debug/flos/slo" | grep -q '"window":"5m"' || fail "/debug/flos/slo has no 5m window"

echo "== cache analytics: result-cache lens snapshot and gauges =="
curl -fsS "$BASE/debug/flos/cache" >"$WORK/cache.json"
grep -q '"result_cache":{' "$WORK/cache.json" || fail "/debug/flos/cache has no result_cache plane"
if grep -q '"page_cache":{' "$WORK/cache.json"; then
  fail "/debug/flos/cache grew a page_cache plane on an in-memory graph"
fi
grep -q '"miss_ratio_curve":\[' "$WORK/cache.json" || fail "cache snapshot has no miss-ratio curve"
grep -q '"ghost":{' "$WORK/cache.json" || fail "cache snapshot has no ghost-list block"
grep -q '"working_set":\[' "$WORK/cache.json" || fail "cache snapshot has no working-set windows"
for m in 'flos_result_cache_mrc_hit_ratio{scale="1x"}' 'flos_result_cache_mrc_hit_ratio{scale="4x"}' \
  'flos_result_cache_lens_hit_ratio' 'flos_result_cache_wss_estimate{window="1m0s"}' \
  'flos_result_cache_ghost_hit_ratio_at_2x' 'flos_result_cache_capacity 64'; do
  grep -qF "$m" "$WORK/metrics.prom" || fail "/metrics missing $m"
done

echo "== offline cache report renders the capacity-planning tables =="
"$WORK/flos" -cachereport "$WORK/cache.json" >"$WORK/cachereport.txt"
grep -q "miss-ratio curve" "$WORK/cachereport.txt" ||
  { cat "$WORK/cachereport.txt" >&2; fail "cache report printed no miss-ratio curve"; }
grep -q -- "<- deployed" "$WORK/cachereport.txt" || fail "cache report marks no deployed scale"
grep -q "ghost list:" "$WORK/cachereport.txt" || fail "cache report has no ghost-list line"

echo "== offline replay renders the convergence table =="
"$WORK/flos" -replay "$WORK/slow.json" -replay-id "$SLOW_ID" >"$WORK/replay.txt"
grep -q "convergence trace:" "$WORK/replay.txt" ||
  { cat "$WORK/replay.txt" >&2; fail "replay printed no convergence table"; }
grep -Eq '^\s+[0-9]+\s+[0-9]+' "$WORK/replay.txt" || fail "replay table has no iteration rows"
grep -q " yes " "$WORK/replay.txt" || fail "replayed trajectory has no certified row"

echo "== continuous profiler wrote captures =="
ls "$WORK"/profiles/cpu-*.pprof >/dev/null 2>&1 || fail "no CPU profiles in $WORK/profiles"
ls "$WORK"/profiles/heap-*.pprof >/dev/null 2>&1 || fail "no heap profiles in $WORK/profiles"

kill "$FLOSD_PID"
wait "$FLOSD_PID" 2>/dev/null || true
FLOSD_PID=""

echo "== recorder overhead benchmark -> $OUT =="
"$WORK/flosbench" -recorder -json "$OUT"
bash scripts/bench_gate.sh "$OUT" median_overhead_pct 2.0 le || fail "recorder overhead gate"

echo "== span-tracing overhead benchmark -> $TRACE_OUT =="
"$WORK/flosbench" -trace-overhead -json "$TRACE_OUT"
bash scripts/bench_gate.sh "$TRACE_OUT" median_overhead_pct 2.0 le || fail "tracing overhead gate"

echo "diagnostics smoke: OK (recorder and tracing median overhead within the 2% gate)"
