#!/usr/bin/env bash
# Diagnostics-plane smoke test (the CI diagnostics-smoke job).
#
# Boots flosd with the flight recorder, slow-query log, SLO tracking, and
# continuous profiler enabled; fires 200 queries plus an injected slow query
# carrying a known X-Request-ID; asserts the query is captured in
# /debug/flos/slow, joinable through its latency-bucket exemplar in
# /metrics?format=json, visible in the flos_slo_* gauges, and replayable
# offline with `flos -replay`; then runs the recorder-overhead benchmark and
# gates on the <= 2% median target, leaving the machine-readable result in
# BENCH_5.json (override with BENCH_OUT).
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="127.0.0.1:18097"
BASE="http://$ADDR"
WORK="$(mktemp -d)"
OUT="${BENCH_OUT:-BENCH_5.json}"
FLOSD_PID=""
trap '[ -n "$FLOSD_PID" ] && kill "$FLOSD_PID" 2>/dev/null; rm -rf "$WORK"' EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

echo "== build =="
go build -o "$WORK/flosgen" ./cmd/flosgen
go build -o "$WORK/flosd" ./cmd/flosd
go build -o "$WORK/flos" ./cmd/flos
go build -o "$WORK/flosbench" ./cmd/flosbench

echo "== generate graph =="
"$WORK/flosgen" -model rmat -n 20000 -m 100000 -seed 1 -format bin -out "$WORK/graph.bin"

echo "== boot flosd with the diagnostics plane on =="
# -slow-latency 1ns promotes every query, which makes the injected slow query
# (fired last, with a client-supplied request ID) deterministically retained
# in the slow log and deterministically the most recent exemplar of its
# latency bucket.
"$WORK/flosd" -bin "$WORK/graph.bin" -addr "$ADDR" \
  -flightrec 512 -slow-latency 1ns -slow-keep 64 \
  -slo-latency 100ms -cache 64 \
  -profile-dir "$WORK/profiles" -profile-interval 2s -profile-keep 3 \
  -log-level warn &
FLOSD_PID=$!
up=""
for _ in $(seq 1 50); do
  if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then up=1; break; fi
  sleep 0.2
done
[ -n "$up" ] || fail "flosd did not come up on $ADDR"

echo "== fire 200 queries =="
for i in $(seq 0 199); do
  q=$(( (i * 37) % 20000 ))
  curl -fsS "$BASE/topk?q=$q&k=10&measure=php" >/dev/null
done
curl -fsS "$BASE/unified?q=11&k=5" >/dev/null
curl -fsS -X POST -d '{"queries":[1,2,3],"k":5,"measure":"rwr"}' "$BASE/topk/batch" >/dev/null
curl -fsS "$BASE/topk?q=0&k=10&measure=php" >/dev/null # repeat: result-cache hit

echo "== inject slow query with a known request ID =="
SLOW_ID="smoke-slow-$$"
curl -fsS -H "X-Request-ID: $SLOW_ID" "$BASE/topk?q=123&k=50&measure=rwr" >/dev/null

echo "== slow log captured it =="
curl -fsS "$BASE/debug/flos/slow" >"$WORK/slow.json"
grep -q "\"$SLOW_ID\"" "$WORK/slow.json" || fail "$SLOW_ID not in /debug/flos/slow"
grep -q '"trace":' "$WORK/slow.json" || fail "slow log carries no trajectories"

echo "== request ID is its latency bucket's exemplar =="
curl -fsS "$BASE/metrics?format=json" >"$WORK/metrics.json"
grep -q "\"$SLOW_ID\"" "$WORK/metrics.json" || fail "$SLOW_ID is not a latency-bucket exemplar"

echo "== SLO gauges and recorder counters exposed =="
curl -fsS "$BASE/metrics" >"$WORK/metrics.prom"
for m in 'flos_slo_availability{window="5m"}' 'flos_slo_availability_burn_rate{window="1h"}' \
  'flos_slo_latency_compliance{window="5m"}' 'flos_flightrec_recorded_total' \
  'flos_query_outcomes_total{outcome="hit"}' 'flos_query_outcomes_total{outcome="ok"}'; do
  grep -qF "$m" "$WORK/metrics.prom" || fail "/metrics missing $m"
done
curl -fsS "$BASE/debug/flos/slo" | grep -q '"window":"5m"' || fail "/debug/flos/slo has no 5m window"

echo "== offline replay renders the convergence table =="
"$WORK/flos" -replay "$WORK/slow.json" -replay-id "$SLOW_ID" >"$WORK/replay.txt"
grep -q "convergence trace:" "$WORK/replay.txt" ||
  { cat "$WORK/replay.txt" >&2; fail "replay printed no convergence table"; }
grep -Eq '^\s+[0-9]+\s+[0-9]+' "$WORK/replay.txt" || fail "replay table has no iteration rows"
grep -q " yes " "$WORK/replay.txt" || fail "replayed trajectory has no certified row"

echo "== continuous profiler wrote captures =="
ls "$WORK"/profiles/cpu-*.pprof >/dev/null 2>&1 || fail "no CPU profiles in $WORK/profiles"
ls "$WORK"/profiles/heap-*.pprof >/dev/null 2>&1 || fail "no heap profiles in $WORK/profiles"

kill "$FLOSD_PID"
wait "$FLOSD_PID" 2>/dev/null || true
FLOSD_PID=""

echo "== recorder overhead benchmark -> $OUT =="
"$WORK/flosbench" -recorder -json "$OUT"
p50=$(awk -F': ' '/"median_overhead_pct"/ {gsub(/,/, "", $2); print $2}' "$OUT")
[ -n "$p50" ] || fail "no median_overhead_pct in $OUT"
awk -v v="$p50" 'BEGIN { exit !(v <= 2.0) }' || fail "median overhead ${p50}% exceeds the 2% target"

echo "diagnostics smoke: OK (recorder median overhead ${p50}%)"
